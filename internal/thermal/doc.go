// Package thermal is a HotSpot-6.0-style compact thermal model for
// 3-D stacked packages: every stack layer (silicon die, die-to-die
// bond, TIM, heat spreader, heatsink base) is discretised into an
// nx×ny grid of RC cells over the die footprint; lumped peripheral
// nodes capture the spreader/heatsink overhang beyond the die, and
// convective boundary conductances model the coolant. The steady
// state solves the SPD conductance system G·T = q with a
// preconditioned conjugate gradient (Jacobi or geometric multigrid)
// whose matrix-vector product is parallelised; a backward-Euler
// stepper reuses the same machinery for transient studies.
//
// Temperatures are in °C with the coolant/ambient temperature folded
// into the right-hand side, so the solution vector is directly the
// temperature field.
//
// Long solves stay controllable: the CG loop polls its context every
// 8 iterations, which is also where the internal/faultinject
// failpoints (thermal.assemble, thermal.cg.iteration) hook in so
// tests and staging drills can fail an assembly or wedge a solve on
// demand.
package thermal
