package core

import (
	"waterimm/internal/material"
	"waterimm/internal/power"
	"waterimm/internal/stack"
	"waterimm/internal/thermal"
)

// ThermalMap is the per-die temperature field of a solved stack, the
// payload of Figures 9, 16 and 18.
type ThermalMap struct {
	Figure string
	Chip   string
	GHz    float64
	Flip   bool
	NX, NY int
	// Dies[i] is die i's field (bottom first), row-major NX×NY.
	Dies [][]float64
	// MaxC / MinC per die, matching the figures' per-layer scales.
	MaxC, MinC []float64
}

// dieMaps extracts per-die fields from a solved result.
func dieMaps(figure string, chip power.Model, ghz float64, flip bool, res *thermal.Result) *ThermalMap {
	n := stack.NumDies(res.Model)
	tm := &ThermalMap{
		Figure: figure, Chip: chip.Name, GHz: ghz, Flip: flip,
		NX: res.Model.Grid.NX, NY: res.Model.Grid.NY,
	}
	for i := 0; i < n; i++ {
		l := stack.DieLayer(i)
		tm.Dies = append(tm.Dies, res.LayerMap(l))
		tm.MaxC = append(tm.MaxC, res.LayerMax(l))
		tm.MinC = append(tm.MinC, res.LayerMin(l))
	}
	return tm
}

// Fig9 reproduces Figure 9: thermal map of the 4-chip high-frequency
// CMP at 3.6 GHz under water cooling (no rotation).
func Fig9() (*ThermalMap, error) {
	res, err := SolveMap(power.HighFrequency, 4, material.Water, 3.6e9, false)
	if err != nil {
		return nil, err
	}
	return dieMaps("fig9", power.HighFrequency, 3.6, false, res), nil
}

// Fig16 reproduces Figure 16: the same stack with even layers rotated
// 180° ("flip").
func Fig16() (*ThermalMap, error) {
	res, err := SolveMap(power.HighFrequency, 4, material.Water, 3.6e9, true)
	if err != nil {
		return nil, err
	}
	return dieMaps("fig16", power.HighFrequency, 3.6, true, res), nil
}

// Fig18 reproduces Figure 18: the 4-chip Xeon Phi 7290 stack at
// 1.2 GHz under water cooling, whose well-spread cores yield the
// paper's most uniform map.
func Fig18() (*ThermalMap, error) {
	res, err := SolveMap(power.XeonPhi, 4, material.Water, 1.2e9, false)
	if err != nil {
		return nil, err
	}
	return dieMaps("fig18", power.XeonPhi, 1.2, false, res), nil
}
