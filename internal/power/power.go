package power

import (
	"fmt"
	"math"
	"sort"
)

// Tech describes the technology parameters the alpha-power law needs.
type Tech struct {
	// VddMax is the supply voltage at the chip's maximum frequency (V).
	VddMax float64
	// VddMin is the lowest usable supply voltage (V); below the
	// frequency reachable at VddMin, voltage stays clamped and only
	// frequency (hence dynamic power) keeps dropping.
	VddMin float64
	// Vth is the threshold voltage (V).
	Vth float64
	// Alpha is the velocity-saturation index; the paper uses 1.3.
	Alpha float64
}

// Tech22HP is the 22 nm high-performance technology point used for
// the McPAT-derived baseline CMPs.
var Tech22HP = Tech{VddMax: 0.90, VddMin: 0.55, Vth: 0.30, Alpha: 1.3}

// Tech14HP approximates the 14 nm nodes of the measured Xeon E5 v4
// and Xeon Phi parts.
var Tech14HP = Tech{VddMax: 1.00, VddMin: 0.60, Vth: 0.32, Alpha: 1.3}

// speed returns the alpha-power-law speed metric (V−Vth)^α / V, which
// is proportional to the maximum operating frequency at voltage v.
func (t Tech) speed(v float64) float64 {
	if v <= t.Vth {
		return 0
	}
	return math.Pow(v-t.Vth, t.Alpha) / v
}

// VoltageFor returns the minimum supply voltage able to sustain the
// frequency ratio r = f/fmax (0 < r ≤ 1), clamped to [VddMin, VddMax].
// The speed metric is strictly increasing in v above Vth, so a
// bisection converges unconditionally.
func (t Tech) VoltageFor(r float64) float64 {
	if r >= 1 {
		return t.VddMax
	}
	target := r * t.speed(t.VddMax)
	lo, hi := t.Vth+1e-9, t.VddMax
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if t.speed(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	v := (lo + hi) / 2
	if v < t.VddMin {
		v = t.VddMin
	}
	return v
}

// Step is one VFS operating point.
type Step struct {
	// FHz is the clock frequency in Hz.
	FHz float64
	// V is the supply voltage in volts.
	V float64
	// DynamicW and StaticW are the chip-wide power components in
	// watts at the reference temperature.
	DynamicW, StaticW float64
}

// TotalW returns the chip-wide power of the step at the reference
// temperature.
func (s Step) TotalW() float64 { return s.DynamicW + s.StaticW }

// GHz returns the step frequency in GHz.
func (s Step) GHz() float64 { return s.FHz / 1e9 }

// Model is a processor chip's VFS and power model.
type Model struct {
	// Name identifies the chip ("low-power", "high-frequency", "e5",
	// "phi").
	Name string
	// Tech is the technology point for the alpha-power law.
	Tech Tech
	// FMinHz, FMaxHz and FStepHz define the VFS table.
	FMinHz, FMaxHz, FStepHz float64
	// MaxPowerW is the chip-wide power at FMaxHz and VddMax, at the
	// reference temperature (the paper's RAPL stress measurement).
	MaxPowerW float64
	// StaticFraction is the leakage share of MaxPowerW at VddMax.
	StaticFraction float64
	// AreaM2 is the die area in m².
	AreaM2 float64
	// Cores is the number of processor cores (used by the workload
	// simulator and the floorplan builders).
	Cores int
	// LeakageTempCoeff is the exponential leakage sensitivity
	// 1/°C: S(T) = S(Tref)·exp(coeff·(T−Tref)). Zero disables the
	// temperature feedback.
	LeakageTempCoeff float64
	// RefTempC is the reference temperature of MaxPowerW.
	RefTempC float64
}

// The chip models of the paper. MaxPowerW for the baseline CMPs comes
// from Table 1 (47.2 W @ 2.0 GHz, 56.8 W @ 3.6 GHz); the E5-2667v4 and
// Phi 7290 values are the RAPL stress measurements the paper reports
// as being above TDP class (135 W and 245 W respectively).
var (
	LowPower = Model{
		Name: "low-power", Tech: Tech22HP,
		FMinHz: 1.0e9, FMaxHz: 2.0e9, FStepHz: 0.1e9,
		MaxPowerW: 47.2, StaticFraction: 0.20,
		AreaM2: 169e-6, Cores: 4,
		LeakageTempCoeff: 0.010, RefTempC: 60,
	}
	HighFrequency = Model{
		Name: "high-frequency", Tech: Tech22HP,
		FMinHz: 1.2e9, FMaxHz: 3.6e9, FStepHz: 0.2e9,
		MaxPowerW: 56.8, StaticFraction: 0.20,
		AreaM2: 169e-6, Cores: 4,
		LeakageTempCoeff: 0.010, RefTempC: 60,
	}
	XeonE5 = Model{
		Name: "e5", Tech: Tech14HP,
		FMinHz: 1.2e9, FMaxHz: 3.6e9, FStepHz: 0.2e9,
		MaxPowerW: 152, StaticFraction: 0.20,
		AreaM2: 246e-6, Cores: 8,
		LeakageTempCoeff: 0.010, RefTempC: 60,
	}
	XeonPhi = Model{
		Name: "phi", Tech: Tech14HP,
		FMinHz: 1.0e9, FMaxHz: 1.6e9, FStepHz: 0.1e9,
		MaxPowerW: 252, StaticFraction: 0.20,
		AreaM2: 683e-6, Cores: 72,
		LeakageTempCoeff: 0.010, RefTempC: 60,
	}
)

// IRDS2033 is the projected 2033 chip multiprocessor from the IRDS
// roadmap the paper's introduction cites: a conventional CMP reaching
// 425 W. We keep the 16-tile organisation and today's die area so the
// projection isolates the power-density problem — 2.5 W/mm², five
// times the baseline — that motivates immersion cooling.
var IRDS2033 = Model{
	Name: "irds2033", Tech: Tech{VddMax: 0.65, VddMin: 0.45, Vth: 0.22, Alpha: 1.3},
	FMinHz: 1.6e9, FMaxHz: 4.8e9, FStepHz: 0.2e9,
	MaxPowerW: 425, StaticFraction: 0.25,
	AreaM2: 169e-6, Cores: 4,
	LeakageTempCoeff: 0.012, RefTempC: 60,
}

// Models lists the four chip models in the order the paper presents
// them.
func Models() []Model { return []Model{LowPower, HighFrequency, XeonE5, XeonPhi} }

// ModelByName returns the chip model with the given name.
func ModelByName(name string) (Model, error) {
	for _, m := range append(Models(), IRDS2033) {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("power: unknown chip model %q", name)
}

// Validate checks the model's parameters for consistency.
func (m Model) Validate() error {
	switch {
	case m.FMinHz <= 0 || m.FMaxHz < m.FMinHz:
		return fmt.Errorf("power: %s: bad frequency range [%g, %g]", m.Name, m.FMinHz, m.FMaxHz)
	case m.FStepHz <= 0:
		return fmt.Errorf("power: %s: bad frequency step %g", m.Name, m.FStepHz)
	case m.MaxPowerW <= 0:
		return fmt.Errorf("power: %s: bad max power %g", m.Name, m.MaxPowerW)
	case m.StaticFraction < 0 || m.StaticFraction >= 1:
		return fmt.Errorf("power: %s: bad static fraction %g", m.Name, m.StaticFraction)
	case m.AreaM2 <= 0:
		return fmt.Errorf("power: %s: bad area %g", m.Name, m.AreaM2)
	case m.Tech.VddMax <= m.Tech.Vth:
		return fmt.Errorf("power: %s: VddMax %g must exceed Vth %g", m.Name, m.Tech.VddMax, m.Tech.Vth)
	case m.Tech.VddMin > m.Tech.VddMax || m.Tech.VddMin <= m.Tech.Vth:
		return fmt.Errorf("power: %s: VddMin %g out of range", m.Name, m.Tech.VddMin)
	}
	return nil
}

// StepAt returns the VFS operating point for frequency fHz. The
// frequency does not need to be on the VFS grid; any value within
// [FMinHz, FMaxHz] is accepted (the planner interpolates only on grid
// steps, but figures 14 and 15 sweep continuous frequencies).
func (m Model) StepAt(fHz float64) (Step, error) {
	if fHz < m.FMinHz-1e3 || fHz > m.FMaxHz+1e3 {
		return Step{}, fmt.Errorf("power: %s: frequency %.2f GHz outside VFS range [%.2f, %.2f] GHz",
			m.Name, fHz/1e9, m.FMinHz/1e9, m.FMaxHz/1e9)
	}
	r := fHz / m.FMaxHz
	v := m.Tech.VoltageFor(r)
	vr := v / m.Tech.VddMax
	dmax := m.MaxPowerW * (1 - m.StaticFraction)
	smax := m.MaxPowerW * m.StaticFraction
	return Step{
		FHz:      fHz,
		V:        v,
		DynamicW: dmax * vr * vr * r,
		StaticW:  smax * vr,
	}, nil
}

// Steps returns the full VFS table, slowest step first.
func (m Model) Steps() []Step {
	var steps []Step
	// Walk in integer multiples of FStepHz to avoid accumulating
	// floating-point drift over the table.
	n := int(math.Round((m.FMaxHz - m.FMinHz) / m.FStepHz))
	for i := 0; i <= n; i++ {
		f := m.FMinHz + float64(i)*m.FStepHz
		if f > m.FMaxHz {
			f = m.FMaxHz
		}
		s, err := m.StepAt(f)
		if err != nil {
			continue
		}
		steps = append(steps, s)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].FHz < steps[j].FHz })
	return steps
}

// PowerAt returns the chip-wide power in watts at frequency fHz and
// junction temperature tempC, applying the exponential leakage
// correction.
func (m Model) PowerAt(fHz, tempC float64) (float64, error) {
	s, err := m.StepAt(fHz)
	if err != nil {
		return 0, err
	}
	return s.DynamicW + s.StaticW*m.leakFactor(tempC), nil
}

func (m Model) leakFactor(tempC float64) float64 {
	if m.LeakageTempCoeff == 0 {
		return 1
	}
	return math.Exp(m.LeakageTempCoeff * (tempC - m.RefTempC))
}

// StaticAt returns only the leakage power at the given voltage step
// and temperature.
func (m Model) StaticAt(s Step, tempC float64) float64 {
	return s.StaticW * m.leakFactor(tempC)
}

// RelativeCurve returns (f/fmax, P/Pmax) pairs across the VFS table,
// reproducing the normalised power/frequency curves of Figure 6.
func (m Model) RelativeCurve() [][2]float64 {
	steps := m.Steps()
	if len(steps) == 0 {
		return nil
	}
	pmax := steps[len(steps)-1].TotalW()
	out := make([][2]float64, len(steps))
	for i, s := range steps {
		out[i] = [2]float64{s.FHz / m.FMaxHz, s.TotalW() / pmax}
	}
	return out
}
