package service

import (
	"context"
	"testing"
	"time"

	"waterimm/internal/api"
)

// fastSweep expands to 4 coarse-grid cells.
func fastSweep() *api.SweepRequest {
	return &api.SweepRequest{
		Chips:    []string{"lp"},
		Depths:   []int{1, 2},
		Coolants: []string{"air", "water"},
		GridNX:   8, GridNY: 8,
	}
}

func TestSweepLifecycle(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	in, err := e.Submit(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != "sweep" {
		t.Fatalf("kind %q", in.Kind)
	}
	if in.Progress == nil || in.Progress.TotalCells != 4 {
		t.Fatalf("initial progress: %+v", in.Progress)
	}
	got := waitDone(t, e, in.ID)
	if got.State != StateDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	if got.Progress == nil || got.Progress.DoneCells != 4 {
		t.Fatalf("final progress: %+v", got.Progress)
	}
	resp, ok := got.Result.(*api.SweepResponse)
	if !ok {
		t.Fatalf("result type %T", got.Result)
	}
	if resp.TotalCells != 4 || len(resp.Cells) != 4 {
		t.Fatalf("response shape: %+v", resp)
	}
	for i, c := range resp.Cells {
		if c.Plan == nil || c.Key == "" || c.Chip != "low-power" {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}
}

// TestSweepSharesCellCache: a sweep's cells land in the same result
// cache as standalone plan requests, in both directions.
func TestSweepSharesCellCache(t *testing.T) {
	e := New(Config{})
	defer e.Close()

	// Pre-solve one cell as a standalone plan request.
	cell := &api.PlanRequest{Chip: "lp", Chips: 1, Coolant: "water", GridNX: 8, GridNY: 8}
	pre, err := e.Submit(cell)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, pre.ID)

	in, err := e.Submit(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, e, in.ID)
	resp := got.Result.(*api.SweepResponse)
	if resp.CachedCells != 1 {
		t.Fatalf("cached cells %d, want 1 (the pre-solved plan)", resp.CachedCells)
	}
	if got.Progress.CachedCells != 1 {
		t.Fatalf("progress cached cells: %+v", got.Progress)
	}

	// The reverse direction: a plan request equal to a sweep cell hits
	// the cache the sweep populated.
	after, err := e.Submit(&api.PlanRequest{Chip: "lp", Chips: 2, Coolant: "air", GridNX: 8, GridNY: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !after.CacheHit {
		t.Fatal("plan request after sweep missed the cache")
	}
}

// TestSweepRepeatIsCacheHit: the whole-sweep response is itself
// cached under the sweep's canonical key.
func TestSweepRepeatIsCacheHit(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	first, err := e.Submit(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, first.ID)
	second, err := e.Submit(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.State != StateDone {
		t.Fatalf("repeat sweep snapshot: %+v", second)
	}
}

func TestSweepCancelStopsCells(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	// Deep cells on a fine grid keep the single worker busy long
	// enough for the cancel to land mid-sweep.
	in, err := e.Submit(&api.SweepRequest{
		Chips:    []string{"lp"},
		Depths:   []int{14, 15, 16},
		Coolants: []string{"water"},
		GridNX:   64, GridNY: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the first cell start
	if _, err := e.Cancel(in.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := e.Wait(ctx, in.ID)
	if err != nil {
		t.Fatalf("sweep did not stop after cancel: %v", err)
	}
	if got.State != StateCanceled && got.State != StateFailed {
		t.Fatalf("state %s after cancel", got.State)
	}
}

func TestSweepInvalid(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	if _, err := e.Submit(&api.SweepRequest{Depths: []int{0}}); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

// TestSweepDrain: Drain must wait for a running sweep (whose
// orchestrator is not a pool worker) and its cells.
func TestSweepDrain(t *testing.T) {
	e := New(Config{Workers: 2})
	in, err := e.Submit(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, err := e.Result(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("sweep drained in state %s (%s)", got.State, got.Error)
	}
}

// TestSweepMetrics: sweeps report their own latency stage and feed
// the assembly-cache stats (cells share geometry across thresholds).
func TestSweepMetrics(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	in, err := e.Submit(&api.SweepRequest{
		Chips:       []string{"lp"},
		Depths:      []int{2},
		Coolants:    []string{"water"},
		ThresholdsC: []float64{70, 80, 90},
		GridNX:      8, GridNY: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, in.ID)
	m := e.Metrics()
	if m.LatencyS["run.sweep"] == nil || m.LatencyS["run.sweep"].Count != 1 {
		t.Fatalf("sweep latency histogram: %+v", m.LatencyS["run.sweep"])
	}
	// Three thresholds over one geometry: the second and third cells
	// must reuse the assembled system.
	if m.Assembly.Hits < 2 {
		t.Fatalf("assembly stats: %+v", m.Assembly)
	}
}
