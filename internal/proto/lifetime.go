package proto

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Component is one test-board component class (Section 2.2): the
// board carries seven component types chosen for their complex
// physical shapes, each with its own film-coating failure behaviour.
type Component struct {
	Name string
	// FailRatePerYear is the exponential underwater fault rate of a
	// coated instance (leak / short through a film defect).
	FailRatePerYear float64
	// AirFailRatePerYear is the baseline rate out of water (ordinary
	// electronics mortality; the paper saw memory faults in air too).
	AirFailRatePerYear float64
	// DischargeYears, when positive, is a deterministic end of life
	// (the CR2032 micro cells discharge rather than fail).
	DischargeYears float64
}

// Components returns the test board's component classes. Rates are
// calibrated to the observed two-year outcome on five boards: all
// five PCIe×4 leaked, one RJ45 and one mPCIe leaked, every CR2032
// discharged, and USB / PGA / microcontrollers survived.
func Components() []Component {
	return []Component{
		{Name: "usb", FailRatePerYear: 0.01, AirFailRatePerYear: 0.005},
		{Name: "rj45", FailRatePerYear: 0.11, AirFailRatePerYear: 0.005},
		{Name: "mpcie", FailRatePerYear: 0.11, AirFailRatePerYear: 0.005},
		{Name: "pciex4", FailRatePerYear: 1.6, AirFailRatePerYear: 0.005},
		{Name: "cr2032", FailRatePerYear: 0.01, AirFailRatePerYear: 0.005, DischargeYears: 1.5},
		{Name: "pga", FailRatePerYear: 0.01, AirFailRatePerYear: 0.005},
		{Name: "mega-avr", FailRatePerYear: 0.01, AirFailRatePerYear: 0.005},
		// The servers of Section 2.3 additionally expose memory
		// slots. Coated slots failed early (the FUJITSU server on day
		// 7); uncoated slots above the waterline fail at the ordinary
		// rate the paper also observed in air.
		{Name: "memory-slot", FailRatePerYear: 0.9, AirFailRatePerYear: 0.25},
	}
}

// MaskRecommended lists the components the paper recommends keeping
// above the waterline (or removing): PCIe×4, RJ45, mPCIe, the micro
// cell, and the memory slots.
func MaskRecommended() map[string]bool {
	return map[string]bool{
		"pciex4": true, "rj45": true, "mpcie": true,
		"cr2032": true, "memory-slot": true,
	}
}

// Failure records one simulated component fault.
type Failure struct {
	Board     int
	Component string
	AtYears   float64
	// Discharged marks a battery end-of-life rather than a leak.
	Discharged bool
}

// FleetReport summarises a fleet simulation.
type FleetReport struct {
	Boards   int
	Years    float64
	Masked   map[string]bool
	Failures []Failure
	// SurvivedBoards counts boards with no underwater electrical
	// fault at the end of the horizon (discharges excluded).
	SurvivedBoards int
}

// CountByComponent tallies failures per component class.
func (r FleetReport) CountByComponent() map[string]int {
	out := make(map[string]int)
	for _, f := range r.Failures {
		out[f.Component]++
	}
	return out
}

// String renders the report in the style of Section 2.2's narrative.
func (r FleetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d boards, %.1f years underwater\n", r.Boards, r.Years)
	counts := r.CountByComponent()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-12s %d faults\n", n, counts[n])
	}
	fmt.Fprintf(&b, "  boards without electrical faults: %d/%d\n", r.SurvivedBoards, r.Boards)
	return b.String()
}

// SimulateFleet runs a Monte-Carlo fleet of coated test boards
// underwater for the given horizon. Masked components sit above the
// water surface and fail at their in-air rate.
func SimulateFleet(boards int, years float64, masked map[string]bool, seed int64) FleetReport {
	rng := rand.New(rand.NewSource(seed))
	comps := Components()
	report := FleetReport{Boards: boards, Years: years, Masked: masked}
	for b := 0; b < boards; b++ {
		electricalFault := false
		for _, c := range comps {
			rate := c.FailRatePerYear
			if masked[c.Name] {
				rate = c.AirFailRatePerYear
			}
			if rate > 0 {
				t := rng.ExpFloat64() / rate
				if t < years {
					report.Failures = append(report.Failures, Failure{
						Board: b, Component: c.Name, AtYears: t,
					})
					electricalFault = true
				}
			}
			if c.DischargeYears > 0 && !masked[c.Name] && c.DischargeYears < years {
				report.Failures = append(report.Failures, Failure{
					Board: b, Component: c.Name,
					AtYears: c.DischargeYears, Discharged: true,
				})
			}
		}
		if !electricalFault {
			report.SurvivedBoards++
		}
	}
	sort.Slice(report.Failures, func(i, j int) bool {
		return report.Failures[i].AtYears < report.Failures[j].AtYears
	})
	return report
}

// ExpectedBoardLifetimeYears returns the mean time to first
// electrical fault of a board under a masking policy — the "couple of
// years when memory slots are not coated" conclusion of Section 2.3.
func ExpectedBoardLifetimeYears(masked map[string]bool) float64 {
	var totalRate float64
	for _, c := range Components() {
		if masked[c.Name] {
			totalRate += c.AirFailRatePerYear
		} else {
			totalRate += c.FailRatePerYear
		}
	}
	if totalRate <= 0 {
		return math.Inf(1)
	}
	return 1 / totalRate
}

// Environment is the water body of a deployment.
type Environment int

// Deployment environments.
const (
	// EnvTap is the laboratory tank with tap water.
	EnvTap Environment = iota
	// EnvSea is the Tokyo Bay experiment: biofouling (shellfish,
	// seaweed) degrades convection, and salt water stresses the film.
	EnvSea
)

// Deployment models a natural-water installation (Section 4.4.3).
type Deployment struct {
	Env Environment
	// FoulingRatePerDay is the fractional convective degradation per
	// day from biological growth on the enclosure.
	FoulingRatePerDay float64
	// StressFactor multiplies component fault rates (salt, motion).
	StressFactor float64
}

// NewDeployment returns the calibrated environment models.
func NewDeployment(env Environment) Deployment {
	switch env {
	case EnvSea:
		return Deployment{Env: env, FoulingRatePerDay: 0.004, StressFactor: 2}
	default:
		return Deployment{Env: env, FoulingRatePerDay: 0, StressFactor: 1}
	}
}

// EffectiveH returns the convective coefficient after d days of
// fouling growth (exponential approach to a fouled floor of 30 %).
func (d Deployment) EffectiveH(h float64, days float64) float64 {
	const floor = 0.3
	frac := floor + (1-floor)*math.Exp(-d.FoulingRatePerDay*days)
	return h * frac
}

// MedianUptimeDays estimates the median days to first fault of a
// fully coated (unmasked) board in the environment; the Tokyo Bay
// prototype recorded 53 days.
func (d Deployment) MedianUptimeDays() float64 {
	var totalRate float64
	for _, c := range Components() {
		totalRate += c.FailRatePerYear
	}
	totalRate *= d.StressFactor
	return math.Ln2 / totalRate * 365
}
