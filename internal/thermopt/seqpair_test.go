package thermopt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func demoModules() []Module {
	return []Module{
		{Name: "core0", W: 4e-3, H: 3e-3, PowerW: 8},
		{Name: "core1", W: 4e-3, H: 3e-3, PowerW: 8},
		{Name: "l2a", W: 5e-3, H: 4e-3, PowerW: 1},
		{Name: "l2b", W: 5e-3, H: 4e-3, PowerW: 1},
		{Name: "mc", W: 6e-3, H: 1.5e-3, PowerW: 2},
		{Name: "io", W: 2e-3, H: 2e-3, PowerW: 0.5},
	}
}

func TestSeqPairLegalPacking(t *testing.T) {
	res, err := Floorplan(SeqPairConfig{Modules: demoModules(), Seed: 1, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Validate() inside Floorplan already guarantees no overlap and
	// in-bounds placement; check the metrics make sense.
	if len(res.Plan.Units) != len(demoModules()) {
		t.Fatalf("placed %d of %d modules", len(res.Plan.Units), len(demoModules()))
	}
	if res.DeadFraction < 0 || res.DeadFraction > 0.6 {
		t.Errorf("dead space %.2f implausible", res.DeadFraction)
	}
	if res.AreaM2 > res.InitialAreaM2 {
		t.Errorf("annealing ended worse than the identity packing: %.2e > %.2e",
			res.AreaM2, res.InitialAreaM2)
	}
}

func TestSeqPairRotationHelps(t *testing.T) {
	// Mixed-aspect modules pack tighter when rotation is allowed.
	modules := []Module{
		{Name: "a", W: 8e-3, H: 1e-3},
		{Name: "b", W: 8e-3, H: 1e-3},
		{Name: "c", W: 1e-3, H: 8e-3},
		{Name: "d", W: 1e-3, H: 8e-3},
	}
	fixed, err := Floorplan(SeqPairConfig{Modules: modules, Seed: 1, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := Floorplan(SeqPairConfig{Modules: modules, Seed: 1, Iterations: 1500, AllowRotate: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("area: fixed %.1f mm2, rotatable %.1f mm2", fixed.AreaM2*1e6, rot.AreaM2*1e6)
	if rot.AreaM2 > fixed.AreaM2 {
		t.Errorf("rotation made packing worse: %.2e vs %.2e", rot.AreaM2, fixed.AreaM2)
	}
}

func TestSeqPairWirelengthPullsNetsTogether(t *testing.T) {
	modules := demoModules()
	nets := []Net{{0, 2}, {1, 3}, {4, 5}}
	loose, err := Floorplan(SeqPairConfig{Modules: modules, Nets: nets, Seed: 3, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Floorplan(SeqPairConfig{
		Modules: modules, Nets: nets, Seed: 3, Iterations: 1500,
		WirelengthWeight: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HPWL: area-only %.1f mm, weighted %.1f mm", loose.HPWLM*1e3, tight.HPWLM*1e3)
	if tight.HPWLM > loose.HPWLM {
		t.Errorf("wirelength weight must not lengthen nets: %.2e vs %.2e", tight.HPWLM, loose.HPWLM)
	}
}

func TestSeqPairThermalSpreadsHotModules(t *testing.T) {
	modules := demoModules()
	base, err := Floorplan(SeqPairConfig{Modules: modules, Seed: 5, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Floorplan(SeqPairConfig{
		Modules: modules, Seed: 5, Iterations: 1500,
		ThermalWeight: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(r *SeqPairResult) float64 {
		u0 := r.Plan.UnitByName("core0")
		u1 := r.Plan.UnitByName("core1")
		dx := (u0.X + u0.W/2) - (u1.X + u1.W/2)
		dy := (u0.Y + u0.H/2) - (u1.Y + u1.H/2)
		return dx*dx + dy*dy
	}
	t.Logf("core separation²: area-only %.2e, thermal-weighted %.2e", dist(base), dist(spread))
	if dist(spread) < dist(base) {
		t.Errorf("thermal weight must push the two hot cores apart")
	}
}

func TestSeqPairDeterministic(t *testing.T) {
	cfg := SeqPairConfig{Modules: demoModules(), Seed: 9, Iterations: 400}
	a, err := Floorplan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Floorplan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AreaM2 != b.AreaM2 || a.HPWLM != b.HPWLM {
		t.Error("same seed must reproduce the same plan")
	}
}

func TestSeqPairValidation(t *testing.T) {
	if _, err := Floorplan(SeqPairConfig{}); err == nil {
		t.Error("empty module list must error")
	}
	if _, err := Floorplan(SeqPairConfig{Modules: []Module{{Name: "x", W: 0, H: 1}}}); err == nil {
		t.Error("degenerate module must error")
	}
	if _, err := Floorplan(SeqPairConfig{
		Modules: demoModules(), Nets: []Net{{99}},
	}); err == nil {
		t.Error("out-of-range net must error")
	}
}

func TestSeqPairRandomLegality(t *testing.T) {
	// Property: any random module set packs into a legal plan.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		var mods []Module
		for i := 0; i < n; i++ {
			mods = append(mods, Module{
				Name: string(rune('a' + i)),
				W:    (0.5 + rng.Float64()*4) * 1e-3,
				H:    (0.5 + rng.Float64()*4) * 1e-3,
			})
		}
		res, err := Floorplan(SeqPairConfig{Modules: mods, Seed: seed, Iterations: 200, AllowRotate: true})
		return err == nil && len(res.Plan.Units) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
