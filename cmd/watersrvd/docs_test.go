package main

import (
	"os"
	"regexp"
	"testing"
)

// TestOperationsDocCoversSurface keeps OPERATIONS.md honest: every
// flag registered here and every route and error code defined in the
// shared HTTP surface (internal/httpapi) must be mentioned in the
// runbook, so the doc cannot silently rot as the surface grows.
func TestOperationsDocCoversSurface(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	surface, err := os.ReadFile("../../internal/httpapi/httpapi.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("OPERATIONS.md must exist at the repo root: %v", err)
	}

	flagRE := regexp.MustCompile(`flag\.(?:String|Int64|Int|Bool|Duration|Float64)\("([a-z-]+)"`)
	var flags []string
	for _, m := range flagRE.FindAllStringSubmatch(string(src), -1) {
		flags = append(flags, m[1])
	}
	if len(flags) < 5 {
		t.Fatalf("flag scrape found only %v — regexp out of date?", flags)
	}
	for _, f := range flags {
		if !regexp.MustCompile("`-" + f + "`").Match(doc) {
			t.Errorf("flag -%s is not documented in OPERATIONS.md", f)
		}
	}

	routeRE := regexp.MustCompile(`mux\.Handle(?:Func)?\("(?:GET|POST|DELETE) ([^"]+)"`)
	var routes []string
	for _, m := range routeRE.FindAllStringSubmatch(string(surface), -1) {
		routes = append(routes, m[1])
	}
	if len(routes) < 8 {
		t.Fatalf("route scrape found only %v — regexp out of date?", routes)
	}
	for _, r := range routes {
		// The pprof sub-handlers are documented via their index.
		if len(r) > len("/debug/pprof/") && r[:len("/debug/pprof/")] == "/debug/pprof/" {
			r = "/debug/pprof/"
		}
		if !regexp.MustCompile(regexp.QuoteMeta(r)).Match(doc) {
			t.Errorf("endpoint %s is not documented in OPERATIONS.md", r)
		}
	}

	// Metric names the runbook must keep explaining: scrape the JSON
	// field tags off the engine's top-level metrics snapshot so a new
	// counter cannot ship undocumented. Nested structures (histogram
	// buckets, solver stats) are documented at the block level only.
	metricsSrc, err := os.ReadFile("../../internal/service/metrics.go")
	if err != nil {
		t.Fatal(err)
	}
	snap := regexp.MustCompile(`(?s)type Snapshot struct \{.*?\n\}`).Find(metricsSrc)
	if snap == nil {
		t.Fatal("service.Snapshot struct not found — scrape out of date?")
	}
	metricRE := regexp.MustCompile("`json:\"([a-z_]+)\"`")
	var metrics []string
	for _, m := range metricRE.FindAllStringSubmatch(string(snap), -1) {
		metrics = append(metrics, m[1])
	}
	if len(metrics) < 15 {
		t.Fatalf("metric scrape found only %v — regexp out of date?", metrics)
	}
	for _, m := range metrics {
		if !regexp.MustCompile("`" + m + "`").Match(doc) {
			t.Errorf("metric %q is not documented in OPERATIONS.md", m)
		}
	}

	codeRE := regexp.MustCompile(`ErrCode[A-Za-z]+\s+= "([a-z_]+)"`)
	var codes []string
	for _, m := range codeRE.FindAllStringSubmatch(string(surface), -1) {
		codes = append(codes, m[1])
	}
	if len(codes) < 8 {
		t.Fatalf("error-code scrape found only %v — regexp out of date?", codes)
	}
	for _, c := range codes {
		if !regexp.MustCompile("`" + c + "`").Match(doc) {
			t.Errorf("error code %q is not documented in OPERATIONS.md", c)
		}
	}
}
