package core

import (
	"context"
	"math"
	"testing"

	"waterimm/internal/material"
	"waterimm/internal/power"
	"waterimm/internal/thermal"
)

// perturbedPlanner returns a planner marked as a one-shot perturbed
// sample of the fastPlanner geometry: same topology, different values.
func perturbedPlanner(g *GeomCache) *Planner {
	p := fastPlanner()
	p.Geoms = g
	p.Perturbed = true
	p.Params.DieK *= 1.21
	p.Params.TIMK *= 0.87
	p.Params.AmbientC = 31
	return p
}

// TestGeomCacheSymbolicReuse: the first session of a geometry seeds
// the structural cache with a full assembly; every same-topology
// session after it — perturbed values included — reassembles through
// the cached sparsity skeleton.
func TestGeomCacheSymbolicReuse(t *testing.T) {
	g := NewGeomCache(8)
	nominal := fastPlanner()
	nominal.Geoms = g
	s, err := nominal.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	st := g.Stats()
	if st.SymbolicMisses != 1 || st.SymbolicHits != 0 || st.Geometries != 1 {
		t.Fatalf("after seeding: %+v", st)
	}

	sp, err := perturbedPlanner(g).NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	sp.Close()
	st = g.Stats()
	if st.SymbolicHits != 1 || st.SymbolicMisses != 1 || st.Geometries != 1 {
		t.Fatalf("perturbed session missed the structural cache: %+v", st)
	}
}

// TestPerturbedSkipsSystemPool pins the eviction-pressure contract: a
// perturbed one-shot session must never Acquire from or Release to
// the system pool — its value-unique key could not hit, and pooling
// it would evict the hot shared geometries.
func TestPerturbedSkipsSystemPool(t *testing.T) {
	pool := thermal.NewSystemCache(4)
	g := NewGeomCache(8)
	p := perturbedPlanner(g)
	p.Cache = pool
	s, err := p.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Peak(context.Background(), 1.2e9); err != nil {
		t.Fatal(err)
	}
	s.Close()
	st := pool.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Idle != 0 {
		t.Fatalf("perturbed session touched the system pool: %+v", st)
	}
}

// TestPerturbedBorrowsAndRefreshes walks the stale-preconditioner
// lifecycle end to end: EnsureGeomRef seeds the geometry's nominal
// reference, a perturbed session borrows its hierarchy and basis, and
// (with the guard forced hot via a negative RefreshFactor) the first
// borrowed solve triggers a value refresh — with every field matching
// an independent solve throughout.
func TestPerturbedBorrowsAndRefreshes(t *testing.T) {
	g := NewGeomCache(8)
	ctx := context.Background()

	nominal := fastPlanner()
	nominal.Geoms = g
	nominal.Precond = thermal.PrecondMG
	if err := nominal.EnsureGeomRef(ctx, power.LowPower, 2, material.Water); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.PrecondReused != 0 {
		t.Fatalf("seeding the reference counted as a borrow: %+v", st)
	}

	pp := perturbedPlanner(g)
	pp.Precond = thermal.PrecondMG
	pp.RefreshFactor = -1 // refresh after the first borrowed solve
	sp, err := pp.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	if sp.borrowed == nil {
		t.Fatal("perturbed MG session did not borrow the reference hierarchy")
	}
	if sp.refBasisFields() == nil {
		t.Fatal("perturbed session did not borrow the nominal basis")
	}
	peak, err := sp.Peak(ctx, 1.2e9)
	if err != nil {
		t.Fatal(err)
	}
	if sp.borrowed != nil {
		t.Fatal("forced guard did not refresh the borrowed hierarchy")
	}
	sp.Close()
	st := g.Stats()
	if st.PrecondReused != 1 || st.PrecondRefreshed != 1 {
		t.Fatalf("borrow/refresh counters: %+v", st)
	}

	// The structural path changes iteration counts, never results.
	solo := perturbedPlanner(nil)
	solo.Precond = thermal.PrecondMG
	ss, err := solo.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	want, err := ss.Peak(ctx, 1.2e9)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(peak - want); d > 1e-4 {
		t.Errorf("borrowed-path peak differs from independent solve by %.2e C", d)
	}
}

// TestBorrowGuardStaysColdAtDefault: with the default factor and a
// healthy baseline, a mild perturbation must keep the borrowed
// hierarchy (no refresh) — the fast path actually stays fast.
func TestBorrowGuardStaysColdAtDefault(t *testing.T) {
	g := NewGeomCache(8)
	ctx := context.Background()

	nominal := fastPlanner()
	nominal.Geoms = g
	nominal.Precond = thermal.PrecondMG
	if err := nominal.EnsureGeomRef(ctx, power.LowPower, 2, material.Water); err != nil {
		t.Fatal(err)
	}

	pp := perturbedPlanner(g)
	pp.Precond = thermal.PrecondMG
	sp, err := pp.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Peak(ctx, 1.2e9); err != nil {
		t.Fatal(err)
	}
	if sp.borrowed == nil {
		t.Error("mild perturbation tripped the refresh guard")
	}
	sp.Close()
	if st := g.Stats(); st.PrecondRefreshed != 0 {
		t.Errorf("refresh counted: %+v", st)
	}
}

// TestGeomCacheEviction: the cache stays bounded under geometry churn
// and keeps serving correct structures across evictions.
func TestGeomCacheEviction(t *testing.T) {
	g := NewGeomCache(2)
	for _, grid := range []int{8, 12, 16, 12, 8} {
		p := fastPlanner()
		p.Geoms = g
		p.Params.GridNX, p.Params.GridNY = grid, grid
		s, err := p.NewSession(power.LowPower, 1, material.Water)
		if err != nil {
			t.Fatalf("grid %d: %v", grid, err)
		}
		s.Close()
	}
	if st := g.Stats(); st.Geometries > 2 {
		t.Fatalf("cache exceeded its capacity: %+v", st)
	}
}
