package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"waterimm/internal/api"
	"waterimm/internal/core"
	"waterimm/internal/faultinject"
	"waterimm/internal/mc"
	"waterimm/internal/rcache"
	"waterimm/internal/thermal"
)

// Config sizes the engine. The zero value gets sensible defaults.
type Config struct {
	// Workers is the worker-pool size; default GOMAXPROCS. The
	// thermal solver already parallelizes its matvec across cores,
	// so workers trade per-job latency against throughput.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// Submit fails with ErrQueueFull beyond it. Default 256.
	QueueDepth int
	// CacheEntries bounds the LRU result cache. Default 512.
	CacheEntries int
	// MaxFinishedJobs bounds how many finished job records are kept
	// for status/result lookups before the oldest are forgotten.
	// Default 4096.
	MaxFinishedJobs int
	// AssemblyCacheEntries bounds the pool of assembled thermal
	// systems shared across planner jobs (thermal.SystemCache), so
	// jobs that revisit a geometry — sweep cells, repeated plan
	// requests — skip matrix assembly. Default 64.
	AssemblyCacheEntries int
	// JobDeadline is the wall-clock budget of every job, covering
	// queue wait and execution: the job's context expires when it
	// runs out, the solver abandons the iteration at its next poll
	// point, and the job fails with ErrorCode "deadline_exceeded".
	// 0 disables deadlines (the default).
	JobDeadline time.Duration
	// MaxQueueWait is the load-shedding budget. When set, Submit
	// rejects new work with an *OverloadError while the predicted
	// queue wait (queue depth × EWMA run time / workers) exceeds it,
	// and a worker sheds any dequeued job that already waited longer
	// (ErrorCode "shed") instead of burning a worker on a request the
	// caller has likely given up on. 0 disables shedding (the
	// default).
	MaxQueueWait time.Duration
	// DiskCache is an optional persistent result store
	// (internal/rcache). When set, lookups are tiered — memory LRU,
	// then disk, then compute — every computed result is spilled to
	// disk, and New bulk-warms the memory LRU from the most recently
	// used disk entries so finished work survives a restart. nil
	// keeps the cache memory-only (the default).
	DiskCache *rcache.Store
	// DisableStructuralReuse turns off the per-geometry structural
	// cache (symbolic assembly reuse and stale-preconditioner
	// borrowing for perturbed Monte-Carlo cells), so every sample pays
	// full assembly and its own multigrid build. Exists for A/B
	// benchmarking against the pre-structural path; production keeps
	// it off.
	DisableStructuralReuse bool
	// CHFScale multiplies every stamped critical-heat-flux limit
	// (stack.Params.CHFScale). 1 — and 0, meaning "default" — keeps
	// the literature correlations; operators lower it to audit against
	// a safety margin (e.g. 0.8 flags hotspots at 80 % of the boiling
	// crisis) or raise it to model surface-engineered enhancement.
	CHFScale float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 4096
	}
	if c.AssemblyCacheEntries <= 0 {
		c.AssemblyCacheEntries = 64
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors.
var (
	ErrQueueFull  = errors.New("service: job queue full")
	ErrClosed     = errors.New("service: engine is shut down")
	ErrUnknownJob = errors.New("service: unknown job")
	ErrNotDone    = errors.New("service: job has not finished")
	// ErrOverloaded rejects a Submit whose predicted queue wait
	// exceeds Config.MaxQueueWait; always wrapped in *OverloadError.
	ErrOverloaded = errors.New("service: predicted queue wait exceeds budget")
	// ErrShed fails a queued job whose wait exceeded
	// Config.MaxQueueWait before a worker reached it.
	ErrShed = errors.New("service: job shed after queue wait budget")
)

// OverloadError is a load-shedding rejection from Submit. It wraps
// the capacity sentinel (ErrQueueFull or ErrOverloaded) and carries
// the engine's suggested client back-off, which the HTTP layer turns
// into a Retry-After header.
type OverloadError struct {
	Err        error
	RetryAfter time.Duration
}

func (o *OverloadError) Error() string {
	return fmt.Sprintf("%v; retry after %v", o.Err, o.RetryAfter)
}

func (o *OverloadError) Unwrap() error { return o.Err }

// PanicError is a panic recovered from a job's execution. The worker
// pool converts a panicking solve into the one job's failure —
// recorded in metrics as panics_recovered — instead of letting it
// kill the daemon.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("service: recovered panic: %v", p.Value)
}

// Stable per-job failure codes surfaced as JobInfo.ErrorCode; the
// HTTP layer maps them onto the error envelope and status codes, so
// changing one is a breaking change.
const (
	CodeCanceled = "canceled"          // job cancelled (Cancel, drain abort)
	CodeDeadline = "deadline_exceeded" // Config.JobDeadline ran out
	CodeShed     = "shed"              // load-shed after overstaying MaxQueueWait
	CodePanic    = "panic"             // solver panicked; recovered by the worker
	CodeInternal = "internal"          // simulation failed
)

// JobInfo is a point-in-time snapshot of a job.
type JobInfo struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Key is the canonical request hash (the cache key).
	Key   string `json:"key"`
	State State  `json:"state"`
	// CacheHit marks a job satisfied from the result cache without
	// simulating.
	CacheHit bool `json:"cache_hit"`
	// Deduped marks a Submit that attached to an already-queued or
	// already-running identical job; only the returned snapshot of
	// that Submit carries it.
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
	// ErrorCode classifies a failure with a stable machine code (the
	// Code* constants); empty for done jobs.
	ErrorCode string `json:"error_code,omitempty"`
	// Progress is the per-cell completion state of a sweep or
	// montecarlo job, updated live while it runs; nil for other kinds.
	Progress *api.SweepProgress `json:"progress,omitempty"`
	// ResumedFromSeq is the interval a cosimstream job resumed from
	// after a restart recovered its disk checkpoint; 0 for a cold
	// start. Operational telemetry only — the result payload of a
	// resumed run is byte-identical to an uninterrupted one.
	ResumedFromSeq int `json:"resumed_from_seq,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// Result is the api.PlanResponse / api.CosimResponse payload;
	// populated by Result only, and only for done jobs.
	Result any `json:"result,omitempty"`
}

// job is the engine's mutable record; all fields below mu-guarded
// state are written under Engine.mu.
type job struct {
	id   string
	kind string
	key  string
	req  api.Request

	state     State
	cacheHit  bool
	err       error
	errCode   string
	result    any
	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}

	// progress is set for sweep and montecarlo jobs, written under
	// Engine.mu as cells finish.
	progress *api.SweepProgress

	// stream is the live interval feed of a cosimstream job; nil for
	// every other kind. It has its own lock — readers block on new
	// intervals without touching Engine.mu.
	stream *streamState
	// resumedFrom is the checkpointed interval a cosimstream job
	// resumed from, written under Engine.mu by its orchestrator.
	resumedFrom int
}

func (j *job) info() JobInfo {
	in := JobInfo{
		ID: j.id, Kind: j.kind, Key: j.key, State: j.state,
		CacheHit: j.cacheHit, SubmittedAt: j.submitted,
		StartedAt: j.started, FinishedAt: j.finished,
	}
	if j.err != nil {
		in.Error = j.err.Error()
		in.ErrorCode = j.errCode
	}
	if j.progress != nil {
		p := *j.progress
		in.Progress = &p
	}
	in.ResumedFromSeq = j.resumedFrom
	return in
}

// Engine owns the worker pool, queue, cache and metrics.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // canonical key → queued/running job
	finished []string        // finished job IDs, oldest first (GC ring)
	cache    *lruCache
	seq      uint64
	closed   bool
	draining bool
	running  int

	queue    chan *job
	workers  sync.WaitGroup
	sweeps   sync.WaitGroup
	baseCtx  context.Context
	abortAll context.CancelFunc

	// sysCache pools assembled thermal systems across planner jobs;
	// it has its own synchronization.
	sysCache *thermal.SystemCache

	// geoms shares per-geometry structural artifacts (sparsity
	// skeletons, reference multigrid hierarchies) across jobs — the
	// Monte-Carlo fast path. nil when Config.DisableStructuralReuse
	// is set; it has its own synchronization.
	geoms *core.GeomCache

	// disk is the persistent result tier (nil = memory only); it has
	// its own synchronization and is never touched under mu — disk IO
	// must not block status polls and submissions.
	disk *rcache.Store

	metrics *metrics
}

// New starts an engine and its workers.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newLRU(cfg.CacheEntries),
		queue:    make(chan *job, cfg.QueueDepth),
		baseCtx:  ctx,
		abortAll: cancel,
		sysCache: thermal.NewSystemCache(cfg.AssemblyCacheEntries),
		disk:     cfg.DiskCache,
		metrics:  newMetrics(),
	}
	if !cfg.DisableStructuralReuse {
		e.geoms = core.NewGeomCache(0)
	}
	if e.disk != nil {
		// Warm boot: results a previous process computed are resident
		// before the first request arrives.
		e.warmFromDisk()
	}
	e.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Submit normalizes, validates, and enqueues a request, returning the
// job snapshot. Three fast paths skip the queue: an invalid request
// fails immediately, a cached result comes back as an already-done
// job, and a request identical to a queued/running job returns that
// job's ID with Deduped set. Submit takes ownership of req; callers
// must not mutate it afterwards.
func (e *Engine) Submit(req api.Request) (JobInfo, error) {
	return e.submit(req, false)
}

// submit is Submit plus the internal flag: cell submissions from a
// running sweep orchestrator are continuations of an already-accepted
// job, so they pass the closed check that rejects new outside work
// while draining (Drain keeps the queue open until every sweep has
// fanned out and finished).
func (e *Engine) submit(req api.Request, internal bool) (JobInfo, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return JobInfo{}, err
	}
	key := req.CacheKey()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed && !internal {
		return JobInfo{}, ErrClosed
	}
	e.metrics.add(&e.metrics.jobsSubmitted, 1)

	res, hit := e.cache.get(key)
	// A fired cache-lookup failpoint degrades the hit into a miss:
	// the engine recomputes rather than serve a suspect entry, so a
	// flaky cache costs latency, never correctness.
	if hit && faultinject.Hit(nil, faultinject.SiteCacheLookup) != nil {
		hit = false
	}
	if hit {
		e.metrics.add(&e.metrics.cacheHitsMem, 1)
		return e.cachedDoneLocked(req, key, res), nil
	}

	if f, ok := e.inflight[key]; ok {
		e.metrics.add(&e.metrics.dedupHits, 1)
		in := f.info()
		in.Deduped = true
		return in, nil
	}

	// Disk tier: the probe does file IO, so the engine lock is
	// released around it — a status poll must never wait on a disk
	// read. The fast paths are re-checked afterwards because an
	// identical submission may have raced in meanwhile.
	if e.disk != nil {
		e.mu.Unlock()
		res, ok := e.diskLookup(key)
		e.mu.Lock()
		if e.closed && !internal {
			return JobInfo{}, ErrClosed
		}
		if memRes, memHit := e.cache.get(key); memHit {
			e.metrics.add(&e.metrics.cacheHitsMem, 1)
			return e.cachedDoneLocked(req, key, memRes), nil
		}
		if f, okf := e.inflight[key]; okf {
			e.metrics.add(&e.metrics.dedupHits, 1)
			in := f.info()
			in.Deduped = true
			return in, nil
		}
		if ok {
			e.metrics.add(&e.metrics.cacheHitsDisk, 1)
			e.cache.add(key, res)
			return e.cachedDoneLocked(req, key, res), nil
		}
	}
	e.metrics.add(&e.metrics.cacheMisses, 1)

	// Predictive load shedding: once the queue is deep enough that a
	// new job would wait out its welcome, reject at the door with a
	// back-off hint instead of accepting work destined to be shed.
	// Internal submissions (sweep cells) bypass this — their sweep was
	// already admitted, and starving it would livelock the batch path.
	if !internal && e.cfg.MaxQueueWait > 0 && e.estimatedWaitLocked() > e.cfg.MaxQueueWait {
		e.metrics.add(&e.metrics.overloadRejects, 1)
		return JobInfo{}, &OverloadError{Err: ErrOverloaded, RetryAfter: e.retryAfterLocked()}
	}

	j := e.newJobLocked(req, key)
	j.state = StateQueued
	if d := e.cfg.JobDeadline; d > 0 {
		j.ctx, j.cancel = context.WithTimeout(e.baseCtx, d)
	} else {
		j.ctx, j.cancel = context.WithCancel(e.baseCtx)
	}

	// A sweep is an orchestrator, not a unit of work: it fans its
	// cells out through Submit (so they get caching, dedup and the
	// worker pool) and only waits. Running it on a pool worker could
	// deadlock the pool against itself — every worker parked on a
	// sweep, no worker left for a cell — so sweeps get their own
	// goroutine, tracked separately for Drain.
	if sweep, ok := req.(*api.SweepRequest); ok {
		j.progress = &api.SweepProgress{
			TotalCells: len(sweep.Chips) * len(sweep.Depths) * len(sweep.Coolants) * len(sweep.ThresholdsC),
		}
		e.inflight[key] = j
		e.sweeps.Add(1)
		go e.runSweep(j, sweep)
		return j.info(), nil
	}

	// A montecarlo job is the same shape of orchestrator as a sweep: it
	// expands its Saltelli plan into plan-request cells, fans them out
	// through the internal submit path (caching, dedup, shedding and
	// deadlines all apply per cell) and reduces the results to
	// statistics. It shares the sweeps WaitGroup so Drain covers it.
	if mcr, ok := req.(*api.MonteCarloRequest); ok {
		j.progress = &api.SweepProgress{TotalCells: mcr.TotalCells()}
		e.inflight[key] = j
		e.metrics.add(&e.metrics.mcJobs, 1)
		e.sweeps.Add(1)
		go e.runMonteCarlo(j, mcr)
		return j.info(), nil
	}

	// An audit is the third orchestrator shape: its (chip, coolant,
	// year) roadmap cells are canonical perturbed plan requests, so
	// they dedup against each other, against sweeps and Monte-Carlo
	// draws, and against the result cache like any other cell.
	if ar, ok := req.(*api.AuditRequest); ok {
		j.progress = &api.SweepProgress{TotalCells: ar.TotalCells()}
		e.inflight[key] = j
		e.metrics.add(&e.metrics.auditJobs, 1)
		e.sweeps.Add(1)
		go e.runAudit(j, ar)
		return j.info(), nil
	}

	// A streaming co-simulation is the fourth orchestrator shape, but
	// unlike the fan-out kinds it is a single long-running solve: it
	// owns a stepper for the job's whole lifetime, pushes each interval
	// into the job's stream buffer as it lands, and checkpoints its
	// resumable state to the disk tier so a drain or crash resumes
	// mid-run. Parking it on a pool worker would pin that worker for
	// the full simulated duration, so it rides the sweeps WaitGroup —
	// which also puts its checkpoint writes inside Drain's barrier.
	if sr, ok := req.(*api.CosimStreamRequest); ok {
		j.progress = &api.SweepProgress{TotalCells: sr.Intervals}
		j.stream = newStreamState()
		e.inflight[key] = j
		e.metrics.add(&e.metrics.streamJobs, 1)
		e.sweeps.Add(1)
		go e.runStream(j, sr)
		return j.info(), nil
	}

	select {
	case e.queue <- j:
	default:
		j.cancel()
		delete(e.jobs, j.id)
		e.metrics.add(&e.metrics.queueFullRejects, 1)
		return JobInfo{}, &OverloadError{
			Err:        fmt.Errorf("%w (depth %d)", ErrQueueFull, e.cfg.QueueDepth),
			RetryAfter: e.retryAfterLocked(),
		}
	}
	e.inflight[key] = j
	return j.info(), nil
}

// estimatedWaitLocked predicts how long a job enqueued now would sit
// in the queue: queued depth spread across the workers, each slot
// taking the EWMA of recent run times. Zero until the engine has
// finished at least one job (no basis to shed on).
func (e *Engine) estimatedWaitLocked() time.Duration {
	ewma := e.metrics.runEWMA()
	if ewma <= 0 {
		return 0
	}
	perWorker := float64(len(e.queue)) / float64(e.cfg.Workers)
	return time.Duration(perWorker * ewma * float64(time.Second))
}

// retryAfterLocked is the engine's back-off suggestion for shed
// clients: the predicted queue wait clamped to [1s, 30s], so a hint
// exists even before the EWMA warms up and a deep queue never tells
// clients to go away for minutes.
func (e *Engine) retryAfterLocked() time.Duration {
	est := e.estimatedWaitLocked()
	if est < time.Second {
		est = time.Second
	}
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}

// RetryAfterHint exposes the current back-off suggestion (see
// retryAfterLocked) for HTTP responses built outside Submit.
func (e *Engine) RetryAfterHint() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.retryAfterLocked()
}

// cachedDoneLocked mints an already-terminal job record around a
// result served from either cache tier, so the submitter gets a
// normal job snapshot without anything ever queueing.
func (e *Engine) cachedDoneLocked(req api.Request, key string, res any) JobInfo {
	j := e.newJobLocked(req, key)
	j.state = StateDone
	j.cacheHit = true
	j.result = res
	j.finished = j.submitted
	close(j.done)
	e.rememberFinishedLocked(j)
	return j.info()
}

func (e *Engine) newJobLocked(req api.Request, key string) *job {
	e.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d-%.8s", e.seq, key),
		kind:      req.Kind(),
		key:       key,
		req:       req,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	e.jobs[j.id] = j
	return j
}

// rememberFinishedLocked appends a terminal job to the GC ring and
// evicts the oldest finished records beyond the cap, so a long-lived
// server does not accumulate job records without bound.
func (e *Engine) rememberFinishedLocked(j *job) {
	e.finished = append(e.finished, j.id)
	for len(e.finished) > e.cfg.MaxFinishedJobs {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}

func (e *Engine) worker() {
	defer e.workers.Done()
	for j := range e.queue {
		e.run(j)
	}
}

func (e *Engine) run(j *job) {
	if !e.start(j) {
		return
	}
	result, err := e.guardedExecute(j)
	e.finalize(j, result, err)
}

// guardedExecute isolates the worker from a panicking solve: the
// panic becomes this one job's failure (classified CodePanic,
// counted as panics_recovered) instead of killing the daemon. The
// SiteExecute failpoint fires here, on the worker goroutine, so an
// armed panic exercises exactly this recovery path.
func (e *Engine) guardedExecute(j *job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Hit(j.ctx, faultinject.SiteExecute); err != nil {
		return nil, fmt.Errorf("service: job %s: %w", j.id, err)
	}
	return e.execute(j.ctx, j.req)
}

// start moves a queued job to running; false means the job is
// already finalized: cancelled while queued, expired past its
// deadline, or shed after overstaying the queue-wait budget.
func (e *Engine) start(j *job) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	wait := time.Since(j.submitted)
	// Queue-side shedding: don't burn a worker on a job whose
	// deadline already fired or whose wait exceeded the budget — the
	// caller has timed out or been told to retry.
	if err := j.ctx.Err(); err != nil {
		e.failLocked(j, fmt.Errorf("service: job expired while queued (waited %v): %w",
			wait.Round(time.Millisecond), err))
		e.finishQueuedLocked(j)
		return false
	}
	if e.cfg.MaxQueueWait > 0 && wait > e.cfg.MaxQueueWait {
		e.failLocked(j, fmt.Errorf("%w (queued %v, budget %v)",
			ErrShed, wait.Round(time.Millisecond), e.cfg.MaxQueueWait))
		e.finishQueuedLocked(j)
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	e.running++
	e.metrics.observe("queue", wait)
	return true
}

// finishQueuedLocked finalizes a job that never ran.
func (e *Engine) finishQueuedLocked(j *job) {
	j.finished = time.Now()
	delete(e.inflight, j.key)
	e.rememberFinishedLocked(j)
	j.cancel()
	close(j.done)
}

// finalize records a running job's outcome and releases everything
// waiting on it. A successful result is then spilled to the disk tier
// outside the lock — still on the worker (or sweep orchestrator)
// goroutine, so Drain's WaitGroups cover the write: once a drain
// returns, every finished result is durable.
func (e *Engine) finalize(j *job, result any, err error) {
	e.mu.Lock()
	e.running--
	j.finished = time.Now()
	e.metrics.observeRun(j.kind, j.finished.Sub(j.started))
	if err == nil {
		j.state = StateDone
		j.result = result
		e.cache.add(j.key, result)
		e.metrics.add(&e.metrics.jobsDone, 1)
	} else {
		e.failLocked(j, err)
	}
	delete(e.inflight, j.key)
	e.rememberFinishedLocked(j)
	j.cancel()
	close(j.done)
	e.mu.Unlock()

	if err == nil && e.disk != nil {
		e.spill(j.kind, j.key, result)
	}
}

// failLocked classifies a job failure into its terminal state, the
// stable error code clients dispatch on, and the matching counter.
func (e *Engine) failLocked(j *job, err error) {
	j.err = err
	var pe *PanicError
	switch {
	case errors.Is(err, ErrShed):
		j.state = StateFailed
		j.errCode = CodeShed
		e.metrics.add(&e.metrics.jobsShed, 1)
	case errors.Is(err, ErrStreamDrained):
		// A draining engine parked the stream behind a checkpoint; the
		// job's own context is still live, so this must be classified
		// before the ctx checks. Cancelled like a drain-aborted job —
		// a resubmission after restart picks the checkpoint back up.
		j.state = StateCanceled
		j.errCode = CodeCanceled
		e.metrics.add(&e.metrics.jobsCanceled, 1)
	case errors.Is(j.ctx.Err(), context.DeadlineExceeded):
		j.state = StateFailed
		j.errCode = CodeDeadline
		e.metrics.add(&e.metrics.jobsDeadline, 1)
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		j.errCode = CodeCanceled
		e.metrics.add(&e.metrics.jobsCanceled, 1)
	case errors.As(err, &pe):
		j.state = StateFailed
		j.errCode = CodePanic
		e.metrics.add(&e.metrics.panicsRecovered, 1)
		e.metrics.add(&e.metrics.jobsFailed, 1)
	default:
		j.state = StateFailed
		j.errCode = CodeInternal
		e.metrics.add(&e.metrics.jobsFailed, 1)
	}
}

// runSweep orchestrates one sweep job: fan the cells out as ordinary
// plan submissions, wait for each, and assemble the batched response.
func (e *Engine) runSweep(j *job, sweep *api.SweepRequest) {
	defer e.sweeps.Done()
	if !e.start(j) {
		return
	}
	resp, err := e.guardedCollect(j, sweep)
	e.finalize(j, resp, err)
}

// guardedCollect gives the sweep orchestrator the same panic
// isolation workers get: a panic fails the sweep, not the daemon.
func (e *Engine) guardedCollect(j *job, sweep *api.SweepRequest) (resp *api.SweepResponse, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.collectSweep(j, sweep)
}

// collectSweep submits every cell up front — maximizing worker-pool
// occupancy, cross-cell deduplication and assembly-cache sharing —
// then gathers results in canonical cell order, updating the job's
// progress as cells land. The first failed or canceled cell aborts
// the sweep; cells already queued keep running (they are independent,
// possibly shared jobs) and their results stay cached for a retry.
func (e *Engine) collectSweep(j *job, sweep *api.SweepRequest) (*api.SweepResponse, error) {
	cells := sweep.Cells()
	submitted := make([]JobInfo, len(cells))
	for i, cell := range cells {
		in, err := e.submitCell(j.ctx, cell)
		if err != nil {
			return nil, fmt.Errorf("service: sweep cell %d/%d: %w", i+1, len(cells), err)
		}
		submitted[i] = in
	}
	resp := &api.SweepResponse{
		Cells:      make([]api.SweepCell, len(cells)),
		TotalCells: len(cells),
	}
	for i, cell := range cells {
		// Cache hits from Submit are already terminal; everything else
		// needs a wait. Either way Wait fetches the result payload.
		in, err := e.Wait(j.ctx, submitted[i].ID)
		if err != nil {
			return nil, fmt.Errorf("service: sweep cell %d/%d: %w", i+1, len(cells), err)
		}
		if in.State != StateDone {
			return nil, fmt.Errorf("service: sweep cell %d/%d %s: %s", i+1, len(cells), in.State, in.Error)
		}
		plan, ok := in.Result.(*api.PlanResponse)
		if !ok {
			return nil, fmt.Errorf("service: sweep cell %d/%d returned %T", i+1, len(cells), in.Result)
		}
		resp.Cells[i] = api.SweepCell{
			Chip: cell.Chip, Chips: cell.Chips, Coolant: cell.Coolant,
			ThresholdC: cell.ThresholdC, Key: in.Key, Plan: plan,
		}
		e.mu.Lock()
		j.progress.DoneCells++
		if in.CacheHit {
			j.progress.CachedCells++
			resp.CachedCells++
		}
		e.mu.Unlock()
	}
	return resp, nil
}

// runMonteCarlo orchestrates one montecarlo job: fan the sample cells
// out as ordinary plan submissions, wait for each, and reduce to
// uncertainty statistics.
func (e *Engine) runMonteCarlo(j *job, req *api.MonteCarloRequest) {
	defer e.sweeps.Done()
	if !e.start(j) {
		return
	}
	resp, err := e.guardedCollectMC(j, req)
	e.finalize(j, resp, err)
}

// guardedCollectMC gives the montecarlo orchestrator the same panic
// isolation workers get: a panic fails the job, not the daemon.
func (e *Engine) guardedCollectMC(j *job, req *api.MonteCarloRequest) (resp *api.MonteCarloResponse, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.collectMonteCarlo(j, req)
}

// collectMonteCarlo submits every sample cell up front — the cells are
// canonical plan requests, so identical draws, earlier sweeps and the
// result cache all collapse into dedup/cache hits — then gathers the
// evaluated frequencies and temperatures in Saltelli row order and
// reduces them: quantiles over the independent A∪B block, exceedance
// probability at the eval step, and Sobol sensitivity indices from the
// paired columns. The first failed or canceled cell aborts the job;
// cells already queued keep running and stay cached for a retry.
func (e *Engine) collectMonteCarlo(j *job, req *api.MonteCarloRequest) (*api.MonteCarloResponse, error) {
	cells := req.Cells()
	submitted := make([]JobInfo, len(cells))
	deduped := make([]bool, len(cells))
	for i, cell := range cells {
		in, err := e.submitCell(j.ctx, cell)
		if err != nil {
			return nil, fmt.Errorf("service: montecarlo cell %d/%d: %w", i+1, len(cells), err)
		}
		submitted[i] = in
		deduped[i] = in.Deduped
	}
	names := req.ParamNames()
	resp := &api.MonteCarloResponse{
		Samples:    req.Samples,
		Params:     names,
		TotalCells: len(cells),
		EvalGHz:    req.EvalGHz,
		ExceedC:    req.ExceedC,
	}
	freq := make([]float64, len(cells))
	peak := make([]float64, len(cells))
	for i := range cells {
		in, err := e.Wait(j.ctx, submitted[i].ID)
		if err != nil {
			return nil, fmt.Errorf("service: montecarlo cell %d/%d: %w", i+1, len(cells), err)
		}
		if in.State != StateDone {
			return nil, fmt.Errorf("service: montecarlo cell %d/%d %s: %s", i+1, len(cells), in.State, in.Error)
		}
		plan, ok := in.Result.(*api.PlanResponse)
		if !ok {
			return nil, fmt.Errorf("service: montecarlo cell %d/%d returned %T", i+1, len(cells), in.Result)
		}
		// Infeasible samples contribute 0 GHz — "this draw cannot run at
		// all" is the correct tail of the max-frequency distribution —
		// and their eval-step temperature still lands in peak, which is
		// exactly what the exceedance probability integrates.
		freq[i] = plan.FrequencyGHz
		peak[i] = plan.EvalPeakC
		e.mu.Lock()
		j.progress.DoneCells++
		if in.CacheHit {
			j.progress.CachedCells++
			resp.CachedCells++
		}
		e.mu.Unlock()
		if deduped[i] {
			resp.DedupedCells++
		}
	}
	e.metrics.add(&e.metrics.mcSamplesDeduped, uint64(resp.CachedCells+resp.DedupedCells))

	// Statistics come from the 2N independent rows (matrices A and B);
	// the N·d pivoted rows exist only to pair with them for Sobol.
	n, d := req.Samples, len(names)
	ind := 2 * n
	resp.FreqGHz = mc.Summarize(freq[:ind])
	resp.EvalPeakC = mc.Summarize(peak[:ind])
	resp.InfeasibleShare = float64(countInfeasible(freq[:ind])) / float64(ind)
	resp.ExceedProb = mc.Exceedance(peak[:ind], req.ExceedC)
	sobolFreq := mc.SobolIndices(n, d, freq)
	sobolPeak := mc.SobolIndices(n, d, peak)
	resp.Sobol = make([]api.MonteCarloSobol, d)
	for k := range names {
		resp.Sobol[k] = api.MonteCarloSobol{
			Param: names[k], FreqGHz: sobolFreq[k], EvalPeakC: sobolPeak[k],
		}
	}
	return resp, nil
}

// countInfeasible counts samples whose max-frequency search found no
// admissible step (reported as 0 GHz).
func countInfeasible(freq []float64) int {
	n := 0
	for _, f := range freq {
		if f == 0 {
			n++
		}
	}
	return n
}

// submitCell submits one sweep cell, waiting out transient queue-full
// rejections: the pool is busy solving earlier cells, so backing off
// briefly and retrying is the batched path's flow control.
func (e *Engine) submitCell(ctx context.Context, cell *api.PlanRequest) (JobInfo, error) {
	for {
		in, err := e.submit(cell, true)
		if err == nil || !errors.Is(err, ErrQueueFull) {
			return in, err
		}
		select {
		case <-ctx.Done():
			return JobInfo{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Status returns a job snapshot without its result payload.
func (e *Engine) Status(id string) (JobInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	return j.info(), nil
}

// Result returns a done job's snapshot including the response
// payload. A job that is still pending returns ErrNotDone; a failed
// or canceled job returns its snapshot and no error (the snapshot's
// State and Error fields carry the outcome).
func (e *Engine) Result(id string) (JobInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	if !j.state.Terminal() {
		return j.info(), ErrNotDone
	}
	in := j.info()
	in.Result = j.result
	return in, nil
}

// Cancel requests cancellation. A queued job is finalized
// immediately; a running job's context is cancelled and the solver
// abandons it at its next poll point. Cancelling a terminal job is a
// no-op. The returned snapshot reflects the state after the call.
func (e *Engine) Cancel(id string) (JobInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.errCode = CodeCanceled
		j.finished = time.Now()
		j.cancel()
		delete(e.inflight, j.key)
		e.rememberFinishedLocked(j)
		e.metrics.add(&e.metrics.jobsCanceled, 1)
		close(j.done)
	case StateRunning:
		j.cancel()
	}
	return j.info(), nil
}

// Wait blocks until the job reaches a terminal state or ctx fires,
// then returns the snapshot with the result payload when done.
func (e *Engine) Wait(ctx context.Context, id string) (JobInfo, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return e.Result(id)
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// Metrics returns a consistent snapshot of counters, gauges and
// latency histograms.
func (e *Engine) Metrics() Snapshot {
	s := e.metrics.snapshot()
	e.mu.Lock()
	s.JobsQueued = len(e.queue)
	s.JobsRunning = e.running
	s.CacheEntries = e.cache.len()
	s.Workers = e.cfg.Workers
	s.RetryAfterHintS = e.retryAfterLocked().Seconds()
	e.mu.Unlock()
	s.Assembly = e.sysCache.Stats()
	gs := e.geoms.Stats() // nil-safe: zeros when structural reuse is disabled
	s.GeomEntries = gs.Geometries
	s.AssemblySymbolicHits = gs.SymbolicHits
	s.AssemblySymbolicMisses = gs.SymbolicMisses
	s.PrecondReused = gs.PrecondReused
	s.PrecondRefreshed = gs.PrecondRefreshed
	if e.disk != nil {
		st := e.disk.Stats()
		s.DiskCacheEnabled = true
		s.DiskCacheEntries = st.Entries
		s.DiskCacheBytes = st.Bytes
		s.DiskCacheEvictions = st.Evictions
		s.DiskCacheCorrupt = st.Corrupt
		s.DiskCacheWrites = st.Writes
		s.DiskCacheWriteErrors = st.WriteErrors
	}
	return s
}

// BeginDrain marks the engine as draining for health reporting:
// Draining returns true from now on, so load balancers and routers
// polling the health endpoint stop sending new work, while in-flight
// HTTP handlers and accepted jobs still complete. Submissions are not
// rejected until Drain is called — the window between the two is the
// grace period in which traffic already on the wire lands cleanly.
func (e *Engine) BeginDrain() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
}

// Draining reports whether a drain has been announced (BeginDrain) or
// started (Drain/Close). The HTTP layer turns this into a 503
// "draining" health response.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining || e.closed
}

// Drain stops accepting new jobs, lets queued and running jobs finish,
// and waits for the workers and sweep orchestrators to exit. An
// accepted sweep completes in full: its orchestrator may still fan
// out cells through the internal submit path, so the queue stays open
// until every sweep is done, and only then closes to wind the workers
// down. If ctx fires first, every remaining job is aborted via its
// context and Drain waits for the workers to observe that, returning
// ctx's error. Drain is idempotent; concurrent calls all wait.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	first := !e.closed
	e.closed = true
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		e.sweeps.Wait()
		if first {
			close(e.queue)
		}
		e.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		e.abortAll()
		<-finished
		return ctx.Err()
	}
}

// Close aborts every in-flight job and waits for the workers to exit.
func (e *Engine) Close() {
	e.abortAll()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = e.Drain(ctx)
}
