package stack

import (
	"fmt"

	"waterimm/internal/convection"
	"waterimm/internal/floorplan"
	"waterimm/internal/material"
	"waterimm/internal/thermal"
)

// Params gathers every geometric and material constant of the stack
// model. The zero value is unusable; start from DefaultParams.
type Params struct {
	// Die.
	DieThickness float64 // m
	DieK         float64 // W/(m·K)

	// Die-to-die bond: adhesive layer crossed by the TSV/TCI copper
	// fill, which raises its effective conductivity well above plain
	// glue. Thickness matches Table 2's TIM/Glue entry.
	BondThickness float64
	BondK         float64

	// TIM between the top die and the spreader (Table 2: 20 µm,
	// 0.25 W/(m·K)). Following HotSpot, the heatsink sits directly on
	// the spreader with no second interface layer.
	TIMThickness float64
	TIMK         float64

	// Heat spreader (Table 2: 6×6×0.1 cm, 400 W/(m·K)).
	SpreaderSide  float64
	SpreaderThick float64
	SpreaderK     float64

	// Heatsink (Table 2: 12×12×3 cm, 400 W/(m·K), 0.3024 m² total
	// convective area including fins). SinkBaseThick is the solid
	// base plate below the fins.
	SinkSide      float64
	SinkBaseThick float64
	SinkK         float64
	SinkTotalArea float64

	// Parylene film on wetted surfaces for non-dielectric coolants
	// (Table 2: 120 µm, 0.14 W/(m·K)).
	ParyleneThick float64
	ParyleneK     float64

	// Package substrate between the bottom die and the board.
	SubstrateThick float64
	SubstrateK     float64

	// Board secondary path: wetted board area for immersion, and the
	// weak natural-convection coefficient when the board sits in air.
	BoardArea     float64
	BoardAirCoeff float64

	// PipeCoeff is the effective film coefficient of the closed-loop
	// cold plate that replaces the heatsink in the water-pipe option.
	PipeCoeff float64

	// ChannelCoeff is the film coefficient of the inter-die
	// microchannel layers when Config.InterDieChannels is set
	// (microchannel heat sinks reach 10⁴-10⁵ W/(m²·K)).
	ChannelCoeff float64

	// SpreadingFactor scales the lumped lateral conductance between
	// the grid window and the spreader/heatsink periphery nodes. The
	// single-ring lumping underestimates distributed spreading; the
	// calibration tests pin this factor.
	SpreadingFactor float64

	// AmbientC is the coolant inlet / room temperature (Table 2: 25°C).
	AmbientC float64

	// CHFScale multiplies every per-coolant critical-heat-flux limit
	// stamped onto wetted layers (CHFLimitFor). 1 is the literature
	// value; 0 means 1 (so zero-valued Params stay meaningful).
	// Raising or lowering it is the audit workload's sensitivity
	// knob and the test hook that makes the boiling crisis reachable
	// on small models.
	CHFScale float64

	// Grid resolution per layer.
	GridNX, GridNY int
}

// DefaultParams returns the Table 2 configuration plus the calibrated
// unspecified constants.
func DefaultParams() Params {
	return Params{
		DieThickness: 100e-6, // thinned for 3-D stacking
		DieK:         material.Silicon.Conductivity,

		BondThickness: 20e-6,
		BondK:         50.0, // Cu-Cu hybrid bond with TSV fill (calibrated)

		TIMThickness: 20e-6,
		TIMK:         material.TIM.Conductivity,

		SpreaderSide:  0.06,
		SpreaderThick: 1e-3,
		SpreaderK:     material.Copper.Conductivity,

		SinkSide:      0.12,
		SinkBaseThick: 6e-3,
		SinkK:         material.Copper.Conductivity,
		SinkTotalArea: 0.3024,

		ParyleneThick: 120e-6,
		ParyleneK:     material.Parylene.Conductivity,

		SubstrateThick: 1.0e-3,
		SubstrateK:     50.0, // substrate with dense thermal-via farm (calibrated)

		BoardArea:     0.04,
		BoardAirCoeff: 10,

		PipeCoeff: 30000,

		ChannelCoeff: 20000,

		SpreadingFactor: 8.0,

		AmbientC: 25,
		CHFScale: 1,
		GridNX:   32,
		GridNY:   32,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"DieThickness", p.DieThickness}, {"DieK", p.DieK},
		{"BondThickness", p.BondThickness}, {"BondK", p.BondK},
		{"TIMThickness", p.TIMThickness}, {"TIMK", p.TIMK},
		{"SpreaderSide", p.SpreaderSide}, {"SpreaderThick", p.SpreaderThick}, {"SpreaderK", p.SpreaderK},
		{"SinkSide", p.SinkSide}, {"SinkBaseThick", p.SinkBaseThick}, {"SinkK", p.SinkK}, {"SinkTotalArea", p.SinkTotalArea},
		{"ParyleneThick", p.ParyleneThick}, {"ParyleneK", p.ParyleneK},
		{"SubstrateThick", p.SubstrateThick}, {"SubstrateK", p.SubstrateK},
		{"BoardArea", p.BoardArea}, {"PipeCoeff", p.PipeCoeff},
		{"ChannelCoeff", p.ChannelCoeff},
		{"SpreadingFactor", p.SpreadingFactor},
	}
	for _, e := range pos {
		if e.v <= 0 {
			return fmt.Errorf("stack: %s must be positive, got %g", e.name, e.v)
		}
	}
	if p.GridNX < 4 || p.GridNY < 4 {
		return fmt.Errorf("stack: grid %dx%d too coarse", p.GridNX, p.GridNY)
	}
	return nil
}

// Config describes one stack to compile.
type Config struct {
	Params  Params
	Coolant material.Coolant
	// Dies lists the powered floorplans from the bottom of the stack
	// to the top. All dies must share the same outline.
	Dies []*floorplan.Floorplan
	// InterDieChannels replaces the solid TSV bonds with microchannel
	// layers through which the coolant flows (the related-work
	// comparison of Section 5.1: microchannel cooling of 3-D ICs).
	// Only meaningful for liquid coolants.
	InterDieChannels bool
}

// filmCoeff composes the coolant's convection coefficient with the
// parylene film for non-dielectric coolants, returning the effective
// series film coefficient in W/(m²·K).
func (c Config) filmCoeff() float64 {
	h := c.Coolant.H
	if h <= 0 {
		return 0
	}
	if c.Coolant.Dielectric {
		return h
	}
	return 1 / (1/h + c.Params.ParyleneThick/c.Params.ParyleneK)
}

// Build compiles the configuration into a thermal model. The layer
// order is: die 0 (bottom), bond, die 1, bond, …, die N−1, TIM,
// spreader[, TIM, sink]. Lumped extras: board, spreader periphery
// [, sink periphery].
func Build(cfg Config) (*thermal.Model, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Dies) == 0 {
		return nil, fmt.Errorf("stack: no dies")
	}
	w, h := cfg.Dies[0].W, cfg.Dies[0].H
	for i, d := range cfg.Dies {
		if d.W != w || d.H != h {
			return nil, fmt.Errorf("stack: die %d outline %gx%g differs from die 0 (%gx%g); rectangular chips must stack congruently",
				i, d.W, d.H, w, h)
		}
	}
	grid := thermal.Grid{NX: p.GridNX, NY: p.GridNY, W: w, H: h}
	m := &thermal.Model{Grid: grid, AmbientC: p.AmbientC}

	coolantFilm := cfg.filmCoeff()
	immersed := cfg.Coolant.Immersive
	pipe := cfg.Coolant.Name == material.WaterPipe.Name

	// Boiling limits for every wetted surface. Pure metadata until a
	// two-phase solve collapses cells, so stamped and unstamped
	// models assemble identically. Pool boiling (Zuber) on bath-
	// wetted faces; the flow enhancement where a pump forces the
	// coolant (cold plate, microchannels); nothing for air.
	poolCHF, flowPlateCHF, flowChannelCHF, filmCollapse := 0.0, 0.0, 0.0, 0.0
	if fluid, ok := convection.FluidForCoolant(cfg.Coolant.Name); ok && fluid.Boils() {
		scale := p.chfScale()
		poolCHF = fluid.ZuberCHF() * scale
		flowPlateCHF = fluid.FlowCHF(pipeFlowSpeedMS, p.SpreaderSide) * scale
		flowChannelCHF = fluid.FlowCHF(channelFlowSpeedMS, w) * scale
		filmCollapse = fluid.FilmBoilCollapse
	}

	// Edge convection applies to every die/bond layer only under
	// immersion; in air the contribution is negligible but physical,
	// so we keep it for the air option too.
	edge := 0.0
	if immersed {
		edge = coolantFilm
	} else if cfg.Coolant.Name == material.Air.Name {
		edge = cfg.Coolant.H
	}

	// Die and bond layers.
	for i, d := range cfg.Dies {
		die := thermal.Layer{
			Name:       fmt.Sprintf("die%d", i),
			Thickness:  p.DieThickness,
			K:          p.DieK,
			VolHeatCap: material.Silicon.VolumetricHeatCapacity,
			Power:      d.PowerMap(grid.NX, grid.NY, w, h),
			EdgeCoeff:  edge,
		}
		if immersed {
			die.CHFLimit, die.FilmBoilCollapse = poolCHF, filmCollapse
		}
		m.Layers = append(m.Layers, die)
		if i < len(cfg.Dies)-1 {
			bond := thermal.Layer{
				Name:       fmt.Sprintf("bond%d", i),
				Thickness:  p.BondThickness,
				K:          p.BondK,
				VolHeatCap: material.TIM.VolumetricHeatCapacity,
				EdgeCoeff:  edge,
			}
			if immersed {
				bond.CHFLimit, bond.FilmBoilCollapse = poolCHF, filmCollapse
			}
			if cfg.InterDieChannels {
				// The microchannel layer is thicker (fluid passages)
				// and couples every cell to the coolant; the
				// parylene question does not arise because channel
				// walls are silicon.
				bond.Name = fmt.Sprintf("channel%d", i)
				bond.Thickness = 100e-6
				bond.ChannelCoeff = p.ChannelCoeff
				// Pumped flow through the channels raises the limit
				// above the pool value.
				bond.CHFLimit, bond.FilmBoilCollapse = flowChannelCHF, filmCollapse
			}
			m.Layers = append(m.Layers, bond)
		}
	}

	// TIM to spreader.
	m.Layers = append(m.Layers, thermal.Layer{
		Name: "tim", Thickness: p.TIMThickness, K: p.TIMK,
		VolHeatCap: material.TIM.VolumetricHeatCapacity,
	})
	spreaderIdx := len(m.Layers)
	spreader := thermal.Layer{
		Name: "spreader", Thickness: p.SpreaderThick, K: p.SpreaderK,
		VolHeatCap: material.Copper.VolumetricHeatCapacity,
	}

	dieArea := w * h
	spreaderArea := p.SpreaderSide * p.SpreaderSide
	overhangSpr := spreaderArea - dieArea
	if overhangSpr < 0 {
		overhangSpr = 0
	}

	// Board path: bottom die -> substrate -> board node -> coolant.
	boardFilm := p.BoardAirCoeff // dry options leave the board in room air
	if immersed {
		boardFilm = coolantFilm
	}
	board := thermal.Extra{
		Name:     "board",
		AmbientG: boardFilm * p.BoardArea,
		Cap:      5000, // ≈ board + padding thermal mass, J/K
	}
	m.Extras = append(m.Extras, board)
	m.Couplings = append(m.Couplings, thermal.Coupling{
		ExtraA: 0, ExtraB: -1, Layer: 0,
		G: dieArea / (p.SubstrateThick / p.SubstrateK),
	})

	// Spreader periphery: the 6×6 cm copper beyond the die footprint.
	perimeter := 2 * (w + h)
	spreadDist := (p.SpreaderSide - minf(w, h)) / 2
	if spreadDist < 1e-4 {
		spreadDist = 1e-4
	}
	sprPeriphG := p.SpreadingFactor * p.SpreaderK * p.SpreaderThick * perimeter / (spreadDist / 2)
	sprPeriph := thermal.Extra{
		Name: "spreader-periphery",
		Cap:  material.Copper.VolumetricHeatCapacity * p.SpreaderThick * overhangSpr,
	}
	if immersed {
		// Exposed spreader overhang is wetted (film-coated for water).
		sprPeriph.AmbientG = coolantFilm * overhangSpr
	}

	switch {
	case pipe:
		// Cold plate directly on the spreader; no heatsink layers.
		spreader.TopCoeff = p.PipeCoeff
		spreader.CHFLimit, spreader.FilmBoilCollapse = flowPlateCHF, filmCollapse
		m.Layers = append(m.Layers, spreader)
		m.Extras = append(m.Extras, sprPeriph)
		sp := len(m.Extras) - 1
		m.Couplings = append(m.Couplings, thermal.Coupling{
			ExtraA: sp, ExtraB: -1, Layer: spreaderIdx, EdgeOnly: true, G: sprPeriphG,
		})
		// The plate also covers the spreader overhang.
		m.Extras[sp].AmbientG += p.PipeCoeff * overhangSpr

	default:
		// Heatsink path (air and all immersion options). As in
		// HotSpot's package model, the sink base sits directly on the
		// spreader.
		m.Layers = append(m.Layers, spreader)
		sinkIdx := len(m.Layers)
		sinkBaseArea := p.SinkSide * p.SinkSide
		finBoost := p.SinkTotalArea / sinkBaseArea
		// The sink is mounted after coating (the film is broken on
		// the spreader surface, Section 2.1), so its surface faces
		// the coolant directly with no parylene in series.
		sink := thermal.Layer{
			Name: "sink", Thickness: p.SinkBaseThick, K: p.SinkK,
			VolHeatCap:   material.Copper.VolumetricHeatCapacity,
			TopCoeff:     cfg.Coolant.H,
			TopAreaBoost: finBoost,
		}
		if immersed {
			sink.CHFLimit, sink.FilmBoilCollapse = poolCHF, filmCollapse
		}
		m.Layers = append(m.Layers, sink)

		overhangSink := sinkBaseArea - dieArea
		sinkSpreadDist := (p.SinkSide - minf(w, h)) / 2
		sinkPeriphG := p.SpreadingFactor * p.SinkK * p.SinkBaseThick * perimeter / (sinkSpreadDist / 2)
		sinkPeriph := thermal.Extra{
			Name:     "sink-periphery",
			AmbientG: cfg.Coolant.H * p.SinkTotalArea * (overhangSink / sinkBaseArea),
			Cap:      material.Copper.VolumetricHeatCapacity * p.SinkBaseThick * overhangSink,
		}

		m.Extras = append(m.Extras, sprPeriph)
		sp := len(m.Extras) - 1
		m.Extras = append(m.Extras, sinkPeriph)
		sk := len(m.Extras) - 1
		m.Couplings = append(m.Couplings,
			thermal.Coupling{ExtraA: sp, ExtraB: -1, Layer: spreaderIdx, EdgeOnly: true, G: sprPeriphG},
			thermal.Coupling{ExtraA: sk, ExtraB: -1, Layer: sinkIdx, EdgeOnly: true, G: sinkPeriphG},
			// Spreader overhang conducts up into the sink overhang.
			thermal.Coupling{ExtraA: sp, ExtraB: sk,
				G: overhangSpr / (p.SinkBaseThick/(2*p.SinkK) + p.SpreaderThick/(2*p.SpreaderK))},
		)
	}

	return m, nil
}

// DieLayer returns the thermal-model layer index of die i (0 =
// bottom) for models produced by Build.
func DieLayer(i int) int { return 2 * i }

// NumDies recovers the die count from a Build-produced model.
func NumDies(m *thermal.Model) int {
	n := 0
	for _, l := range m.Layers {
		if len(l.Name) > 3 && l.Name[:3] == "die" {
			n++
		}
	}
	return n
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
