package cosim

import (
	"context"
	"fmt"
	"math"

	"waterimm/internal/floorplan"
	"waterimm/internal/material"
	"waterimm/internal/mcpat"
	"waterimm/internal/power"
	"waterimm/internal/stack"
	"waterimm/internal/thermal"
)

// StreamPhase is one segment of a deterministic utilisation trace.
// Phases cycle: a trace of {2s @ 1.0, 1s @ 0.1} repeats every 3
// seconds of simulated time for as long as the stream runs.
type StreamPhase struct {
	DurationS   float64 `json:"duration_s"`
	Utilisation float64 `json:"utilisation"`
}

// StreamConfig describes an interval-engine run: a power trace drives
// the transient stack model one coupling interval at a time, with an
// optional DVFS governor throttling between intervals. Unlike Config
// there is no event kernel — the workload is the utilisation trace —
// which is what makes the loop checkpointable: the entire mutable
// state is the temperature field plus a handful of scalars.
type StreamConfig struct {
	Chip    power.Model
	Chips   int
	Coolant material.Coolant
	Params  stack.Params

	// FHz is the initial frequency; it must be a VFS step of Chip.
	FHz float64
	// IntervalS is the coupling period in simulated seconds.
	IntervalS float64
	// Intervals is the total run length in coupling periods.
	Intervals int
	// SubSteps integrates the thermal model this many backward-Euler
	// steps per interval (default 1).
	SubSteps int
	// Phases is the utilisation trace; empty means a steady full load.
	Phases []StreamPhase
	// DVFS, when non-nil, enables the hysteresis governor.
	DVFS *DVFSPolicy
}

// StreamSample is one interval's record. Seq is 1-based and
// contiguous; a resumed stream continues the numbering of the
// interrupted one.
type StreamSample struct {
	Seq         int     `json:"seq"`
	TimeS       float64 `json:"time_s"`
	FHz         float64 `json:"f_hz"`
	PeakC       float64 `json:"peak_c"`
	DynamicW    float64 `json:"dynamic_w"`
	StaticW     float64 `json:"static_w"`
	Utilisation float64 `json:"utilisation"`
	Throttled   bool    `json:"throttled,omitempty"`
}

// Checkpoint is a serializable snapshot of a Stream between intervals.
// It carries everything Next consults: the stepper state (temperature
// field + simulated time), the governor index, the aggregates, and the
// samples produced so far — so a restored stream finishes with output
// bit-identical to an uninterrupted run (Go's JSON encoding
// round-trips float64 exactly).
type Checkpoint struct {
	Seq       int            `json:"seq"`
	TimeS     float64        `json:"time_s"`
	StepIdx   int            `json:"step_idx"`
	Throttles int            `json:"throttles"`
	GHzSum    float64        `json:"ghz_sum"`
	MaxPeakC  float64        `json:"max_peak_c"`
	T         []float64      `json:"t"`
	Samples   []StreamSample `json:"samples"`
}

// Stream is a resumable interval engine. It is not safe for concurrent
// use; the owning goroutine drives Next and publishes samples itself.
type Stream struct {
	cfg     StreamConfig
	steps   []power.Step
	stepIdx int
	fp      *floorplan.Floorplan
	model   *thermal.Model
	sys     *thermal.System
	stepper *thermal.Stepper
	cycleS  float64

	seq       int
	throttles int
	ghzSum    float64
	maxPeak   float64
	lastPeak  float64
	samples   []StreamSample
}

// NewStream validates the config and builds the stack model at the
// initial operating point. Only the power maps change between
// intervals; the matrix structure is assembled once.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Chips < 1 {
		return nil, fmt.Errorf("cosim: need at least one chip")
	}
	if cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("cosim: non-positive coupling interval")
	}
	if cfg.Intervals < 1 {
		return nil, fmt.Errorf("cosim: need at least one interval")
	}
	if cfg.SubSteps < 1 {
		cfg.SubSteps = 1
	}
	var cycle float64
	for i, p := range cfg.Phases {
		if p.DurationS <= 0 || math.IsNaN(p.DurationS) || math.IsInf(p.DurationS, 0) {
			return nil, fmt.Errorf("cosim: phase %d has non-positive duration", i)
		}
		if p.Utilisation < 0 || p.Utilisation > 1 || math.IsNaN(p.Utilisation) {
			return nil, fmt.Errorf("cosim: phase %d utilisation %g outside [0,1]", i, p.Utilisation)
		}
		cycle += p.DurationS
	}
	steps := cfg.Chip.Steps()
	stepIdx := -1
	for i, s := range steps {
		if s.FHz == cfg.FHz {
			stepIdx = i
		}
	}
	if stepIdx < 0 {
		return nil, fmt.Errorf("cosim: %.2f GHz is not a VFS step of %s", cfg.FHz/1e9, cfg.Chip.Name)
	}

	fp, err := mcpat.ChipAt(cfg.Chip, steps[stepIdx], cfg.Params.AmbientC)
	if err != nil {
		return nil, err
	}
	dies := make([]*floorplan.Floorplan, cfg.Chips)
	for i := range dies {
		dies[i] = fp
	}
	model, err := stack.Build(stack.Config{Params: cfg.Params, Coolant: cfg.Coolant, Dies: dies})
	if err != nil {
		return nil, err
	}
	sys, err := thermal.Assemble(model)
	if err != nil {
		return nil, err
	}
	stepper, err := thermal.NewStepper(sys, cfg.IntervalS/float64(cfg.SubSteps))
	if err != nil {
		return nil, err
	}
	return &Stream{
		cfg: cfg, steps: steps, stepIdx: stepIdx,
		fp: fp, model: model, sys: sys, stepper: stepper,
		cycleS: cycle, lastPeak: cfg.Params.AmbientC,
	}, nil
}

// utilisationAt returns the trace utilisation for the interval with
// the given 0-based index, evaluated at the interval's start time.
func (s *Stream) utilisationAt(idx int) float64 {
	if s.cycleS == 0 {
		return 1
	}
	t := math.Mod(float64(idx)*s.cfg.IntervalS, s.cycleS)
	for _, p := range s.cfg.Phases {
		if t < p.DurationS {
			return p.Utilisation
		}
		t -= p.DurationS
	}
	return s.cfg.Phases[len(s.cfg.Phases)-1].Utilisation
}

// Done reports whether the configured interval count has been reached.
func (s *Stream) Done() bool { return s.seq >= s.cfg.Intervals }

// Seq returns the number of completed intervals.
func (s *Stream) Seq() int { return s.seq }

// Samples returns the accumulated per-interval records (all of them,
// including those restored from a checkpoint). Callers must treat the
// slice as read-only.
func (s *Stream) Samples() []StreamSample { return s.samples }

// Throttles counts downward governor steps so far.
func (s *Stream) Throttles() int { return s.throttles }

// MaxPeakC is the hottest instant so far.
func (s *Stream) MaxPeakC() float64 { return s.maxPeak }

// MeanGHz is the time-average frequency over the completed intervals.
func (s *Stream) MeanGHz() float64 {
	if s.seq == 0 {
		return 0
	}
	return s.ghzSum / float64(s.seq)
}

// Next advances one coupling interval: apply the trace's power at the
// current operating point (leakage evaluated at the last peak),
// integrate the stack SubSteps backward-Euler steps, then let the
// governor move the operating point for the next interval. Ctx is
// threaded into the thermal solves.
func (s *Stream) Next(ctx context.Context) (StreamSample, error) {
	if s.Done() {
		return StreamSample{}, fmt.Errorf("cosim: stream exhausted after %d intervals", s.seq)
	}
	step := s.steps[s.stepIdx]
	util := s.utilisationAt(s.seq)
	if err := s.applyPower(step, util); err != nil {
		return StreamSample{}, err
	}
	if err := s.sys.UpdatePower(); err != nil {
		return StreamSample{}, err
	}
	peak, err := s.stepper.Run(ctx, s.cfg.SubSteps)
	if err != nil {
		return StreamSample{}, err
	}
	s.seq++
	sample := StreamSample{
		Seq:         s.seq,
		TimeS:       s.stepper.Time(),
		FHz:         step.FHz,
		PeakC:       peak,
		DynamicW:    step.DynamicW * util * float64(s.cfg.Chips),
		StaticW:     s.cfg.Chip.StaticAt(step, s.lastPeak) * float64(s.cfg.Chips),
		Utilisation: util,
	}
	s.lastPeak = peak
	s.ghzSum += step.GHz()
	if peak > s.maxPeak {
		s.maxPeak = peak
	}
	if s.cfg.DVFS != nil {
		switch {
		case peak > s.cfg.DVFS.SetpointC-s.cfg.DVFS.HysteresisC && s.stepIdx > 0:
			s.stepIdx--
			s.throttles++
			sample.Throttled = true
		case peak < s.cfg.DVFS.SetpointC-3*s.cfg.DVFS.HysteresisC && s.stepIdx < len(s.steps)-1:
			s.stepIdx++
		}
	}
	s.samples = append(s.samples, sample)
	return sample, nil
}

// applyPower rewrites every die layer's power map for the operating
// point, duty-cycling the dynamic share by the trace utilisation, with
// leakage evaluated at the last observed peak (the dtm idiom).
func (s *Stream) applyPower(step power.Step, util float64) error {
	if err := mcpat.Assign(s.fp, s.cfg.Chip, step, s.lastPeak); err != nil {
		return err
	}
	if util < 1 {
		total := s.fp.TotalPower()
		want := step.DynamicW*util + s.cfg.Chip.StaticAt(step, s.lastPeak)
		if total > 0 {
			s.fp.ScalePower(want / total)
		}
	}
	grid := s.model.Grid
	m := s.fp.PowerMap(grid.NX, grid.NY, grid.W, grid.H)
	for die := 0; die < s.cfg.Chips; die++ {
		copy(s.model.Layers[stack.DieLayer(die)].Power, m)
	}
	return nil
}

// Checkpoint snapshots the stream between intervals. The snapshot owns
// its slices; the stream can keep running after taking one.
func (s *Stream) Checkpoint() *Checkpoint {
	tc := s.stepper.Checkpoint()
	return &Checkpoint{
		Seq:       s.seq,
		TimeS:     tc.TimeS,
		StepIdx:   s.stepIdx,
		Throttles: s.throttles,
		GHzSum:    s.ghzSum,
		MaxPeakC:  s.maxPeak,
		T:         tc.T,
		Samples:   append([]StreamSample(nil), s.samples...),
	}
}

// Restore rewinds a freshly built stream (same config) to a
// checkpoint. Everything Next consults is restored exactly — the
// temperature field, the governor index, the leakage reference (the
// last sample's peak), and the aggregates — so the continued
// trajectory is bit-identical to one that was never interrupted.
func (s *Stream) Restore(c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("cosim: nil stream checkpoint")
	}
	if c.Seq < 0 || c.Seq > s.cfg.Intervals {
		return fmt.Errorf("cosim: checkpoint seq %d outside [0,%d]", c.Seq, s.cfg.Intervals)
	}
	if len(c.Samples) != c.Seq {
		return fmt.Errorf("cosim: checkpoint carries %d samples for seq %d", len(c.Samples), c.Seq)
	}
	if c.StepIdx < 0 || c.StepIdx >= len(s.steps) {
		return fmt.Errorf("cosim: checkpoint step index %d outside the VFS table", c.StepIdx)
	}
	for i, smp := range c.Samples {
		if smp.Seq != i+1 {
			return fmt.Errorf("cosim: checkpoint samples not contiguous at %d (seq %d)", i, smp.Seq)
		}
	}
	if err := s.stepper.Restore(&thermal.Checkpoint{TimeS: c.TimeS, T: c.T}); err != nil {
		return err
	}
	s.seq = c.Seq
	s.stepIdx = c.StepIdx
	s.throttles = c.Throttles
	s.ghzSum = c.GHzSum
	s.maxPeak = c.MaxPeakC
	s.lastPeak = s.cfg.Params.AmbientC
	if c.Seq > 0 {
		s.lastPeak = c.Samples[c.Seq-1].PeakC
	}
	s.samples = append([]StreamSample(nil), c.Samples...)
	return nil
}
