package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"waterimm/internal/api"
	"waterimm/internal/rcache"
)

const auditJobBody = `{"type": "audit", "request": {"chips": ["lp"], "coolants": ["fluorinert", "air"], "start_year": 2026, "end_year": 2028, "grid_nx": 8, "grid_ny": 8}}`

// TestRouterAuditEdgeResubmit is the fleet smoke test for the audit
// workload: a roadmap audit submitted through POST /v1/jobs at the
// edge completes and is harvested into the edge store, and the
// identical resubmit is answered edge-side with zero additional
// backend computes — the audit's cells live in the shared plan
// keyspace and its whole-job result in the edge cache like every
// other kind.
func TestRouterAuditEdgeResubmit(t *testing.T) {
	store, err := rcache.Open(t.TempDir(), 0, api.CacheGeneration)
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(t, 3, store)
	c := f.client(t)
	ctx := context.Background()

	resp, body := postJSON(t, f.edge.URL+"/v1/jobs", auditJobBody)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var j struct {
		ID   string `json:"id"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.Kind != "audit" {
		t.Fatalf("kind %q: %s", j.Kind, body)
	}

	ctxWait, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := c.WaitJob(ctxWait, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	var ar api.AuditResponse
	if err := json.Unmarshal(final.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.TotalCells != 6 || len(ar.Rows) != 2 {
		t.Fatalf("implausible audit result via router: %s", final.Result)
	}
	// Fluorinert (row 1 after canonical sort) must fail on CHF from the
	// first year; air (row 0) never.
	if ar.Rows[1].FirstCHFFailYear != 2026 || ar.Rows[0].FirstCHFFailYear != 0 {
		t.Fatalf("audit verdicts via router: %+v", ar.Rows)
	}
	if snap := f.router.Metrics(); snap.EdgeCacheHarvests != 1 {
		t.Fatalf("result poll did not harvest into the edge store: %+v", snap)
	}

	// The identical resubmit must be answered at the edge: terminal
	// immediately, marked as a cache hit, owned by the edge pseudo-
	// backend, and costing the fleet zero new computes.
	done := f.jobsDone()
	resp2, body2 := postJSON(t, f.edge.URL+"/v1/jobs", auditJobBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
	var j2 struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.Unmarshal(body2, &j2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j2.ID, edgeBackendID+affinitySep) || j2.State != "done" || !j2.CacheHit {
		t.Fatalf("resubmit not edge-served: %s", body2)
	}
	final2, err := c.Result(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	var ar2 api.AuditResponse
	if err := json.Unmarshal(final2.Result, &ar2); err != nil {
		t.Fatal(err)
	}
	if len(ar2.Rows) != len(ar.Rows) || ar2.Rows[1].FirstCHFFailYear != ar.Rows[1].FirstCHFFailYear {
		t.Fatalf("edge-served audit diverges:\n first: %+v\nsecond: %+v", ar.Rows, ar2.Rows)
	}
	if got := f.jobsDone(); got != done {
		t.Fatalf("identical resubmit recomputed on a backend (%d → %d jobs done)", done, got)
	}
}
