// Package floorplan models 2-D chip floorplans: named rectangular
// units with assigned power, rasterisation onto thermal-solver grids,
// and the 180° chip rotation ("flip") transformation the paper uses
// for thermal-aware 3-D stacking (Section 4.2).
package floorplan

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Unit is one named rectangle of a floorplan. Coordinates are metres
// with the origin at the chip's lower-left corner.
type Unit struct {
	Name       string
	X, Y, W, H float64
	// PowerW is the total power dissipated uniformly over the unit.
	PowerW float64
	// Kind tags the unit class ("core", "l2", "router", "mc", "misc")
	// for power assignment and reporting.
	Kind string
}

// Area returns the unit area in m².
func (u Unit) Area() float64 { return u.W * u.H }

// Density returns the unit power density in W/m².
func (u Unit) Density() float64 {
	if a := u.Area(); a > 0 {
		return u.PowerW / a
	}
	return 0
}

// Floorplan is a rectangular chip outline filled with units.
type Floorplan struct {
	Name string
	// W, H are the chip dimensions in metres.
	W, H  float64
	Units []Unit
}

// Clone returns a deep copy of the floorplan.
func (f *Floorplan) Clone() *Floorplan {
	g := &Floorplan{Name: f.Name, W: f.W, H: f.H, Units: make([]Unit, len(f.Units))}
	copy(g.Units, f.Units)
	return g
}

// Area returns the chip area in m².
func (f *Floorplan) Area() float64 { return f.W * f.H }

// TotalPower returns the sum of all unit powers in watts.
func (f *Floorplan) TotalPower() float64 {
	var p float64
	for _, u := range f.Units {
		p += u.PowerW
	}
	return p
}

// Validate checks that every unit lies inside the chip outline and
// that no two units overlap (within a small tolerance).
func (f *Floorplan) Validate() error {
	const eps = 1e-9
	if f.W <= 0 || f.H <= 0 {
		return fmt.Errorf("floorplan %s: non-positive outline %gx%g", f.Name, f.W, f.H)
	}
	for i, u := range f.Units {
		if u.W <= 0 || u.H <= 0 {
			return fmt.Errorf("floorplan %s: unit %s has non-positive size", f.Name, u.Name)
		}
		if u.X < -eps || u.Y < -eps || u.X+u.W > f.W+eps || u.Y+u.H > f.H+eps {
			return fmt.Errorf("floorplan %s: unit %s exceeds outline", f.Name, u.Name)
		}
		for j := i + 1; j < len(f.Units); j++ {
			v := f.Units[j]
			if u.X+u.W > v.X+eps && v.X+v.W > u.X+eps &&
				u.Y+u.H > v.Y+eps && v.Y+v.H > u.Y+eps {
				return fmt.Errorf("floorplan %s: units %s and %s overlap", f.Name, u.Name, v.Name)
			}
		}
	}
	return nil
}

// Rotate180 returns the floorplan rotated by 180°, the "flip" layout
// applied to even layers in Section 4.2. (90° rotations are excluded
// in the paper because rectangular chips would no longer stack.)
func (f *Floorplan) Rotate180() *Floorplan {
	g := f.Clone()
	g.Name = f.Name + "+flip"
	for i := range g.Units {
		u := &g.Units[i]
		u.X = f.W - u.X - u.W
		u.Y = f.H - u.Y - u.H
	}
	return g
}

// MirrorX returns the floorplan mirrored across the vertical axis.
// Used by the annealing floorplanner's move set.
func (f *Floorplan) MirrorX() *Floorplan {
	g := f.Clone()
	g.Name = f.Name + "+mirrorx"
	for i := range g.Units {
		u := &g.Units[i]
		u.X = f.W - u.X - u.W
	}
	return g
}

// ScalePower multiplies every unit power by k and returns the
// floorplan (for chaining). Used when assigning a VFS step's power to
// a layout built for unit (1 W) total power.
func (f *Floorplan) ScalePower(k float64) *Floorplan {
	for i := range f.Units {
		f.Units[i].PowerW *= k
	}
	return f
}

// SetKindPower distributes totalW uniformly over all units of the
// given kind.
func (f *Floorplan) SetKindPower(kind string, totalW float64) {
	var n int
	for _, u := range f.Units {
		if u.Kind == kind {
			n++
		}
	}
	if n == 0 {
		return
	}
	per := totalW / float64(n)
	for i := range f.Units {
		if f.Units[i].Kind == kind {
			f.Units[i].PowerW = per
		}
	}
}

// KindPower returns the total power of all units of the given kind.
func (f *Floorplan) KindPower(kind string) float64 {
	var p float64
	for _, u := range f.Units {
		if u.Kind == kind {
			p += u.PowerW
		}
	}
	return p
}

// PowerMap rasterises the floorplan's power onto an nx×ny grid
// covering a w×h window centred on the chip. Each unit's power is
// distributed over the grid cells it overlaps in proportion to the
// overlap area, so the map conserves total power exactly (up to
// floating-point rounding) for any grid resolution.
func (f *Floorplan) PowerMap(nx, ny int, w, h float64) []float64 {
	m := make([]float64, nx*ny)
	if nx <= 0 || ny <= 0 || w <= 0 || h <= 0 {
		return m
	}
	// Chip offset inside the window.
	ox := (w - f.W) / 2
	oy := (h - f.H) / 2
	dx := w / float64(nx)
	dy := h / float64(ny)
	for _, u := range f.Units {
		if u.PowerW == 0 {
			continue
		}
		x0, y0 := u.X+ox, u.Y+oy
		x1, y1 := x0+u.W, y0+u.H
		i0 := clampInt(int(math.Floor(x0/dx)), 0, nx-1)
		i1 := clampInt(int(math.Ceil(x1/dx))-1, 0, nx-1)
		j0 := clampInt(int(math.Floor(y0/dy)), 0, ny-1)
		j1 := clampInt(int(math.Ceil(y1/dy))-1, 0, ny-1)
		density := u.PowerW / (u.W * u.H)
		for j := j0; j <= j1; j++ {
			cy0, cy1 := float64(j)*dy, float64(j+1)*dy
			oyl := math.Min(y1, cy1) - math.Max(y0, cy0)
			if oyl <= 0 {
				continue
			}
			for i := i0; i <= i1; i++ {
				cx0, cx1 := float64(i)*dx, float64(i+1)*dx
				oxl := math.Min(x1, cx1) - math.Max(x0, cx0)
				if oxl <= 0 {
					continue
				}
				m[j*nx+i] += density * oxl * oyl
			}
		}
	}
	return m
}

// UnitByName returns a pointer to the named unit, or nil.
func (f *Floorplan) UnitByName(name string) *Unit {
	for i := range f.Units {
		if f.Units[i].Name == name {
			return &f.Units[i]
		}
	}
	return nil
}

// String renders a short textual summary: outline, unit count, power.
func (f *Floorplan) String() string {
	return fmt.Sprintf("%s %.1fx%.1f mm, %d units, %.1f W",
		f.Name, f.W*1e3, f.H*1e3, len(f.Units), f.TotalPower())
}

// Describe renders a sorted per-unit table for debugging and docs.
func (f *Floorplan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%.2f x %.2f mm)\n", f.Name, f.W*1e3, f.H*1e3)
	units := make([]Unit, len(f.Units))
	copy(units, f.Units)
	sort.Slice(units, func(i, j int) bool { return units[i].Name < units[j].Name })
	for _, u := range units {
		fmt.Fprintf(&b, "  %-10s %-7s at (%5.2f,%5.2f) mm  %5.2f x %5.2f mm  %6.3f W  %7.2f W/cm2\n",
			u.Name, u.Kind, u.X*1e3, u.Y*1e3, u.W*1e3, u.H*1e3, u.PowerW, u.Density()/1e4)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
