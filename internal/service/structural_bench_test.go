package service

import (
	"context"
	"testing"

	"waterimm/internal/api"
	"waterimm/internal/mc"
)

// mcSolverBoundRequest builds the structural-reuse acceptance
// workloads: montecarlo jobs whose cells are MG-sized (128×128 grid)
// and value-unique, so nothing hides behind result-cache hits — every
// solved cell pays assembly and preconditioning.
//
// The "deduped-class" shape (allParams=false) matches
// BenchmarkMonteCarloDeduped: a single ambient_c draw, the common
// one-uncertain-parameter study. Ambient only moves the right-hand
// side, so the nominal basis warm starts are exact up to solver
// tolerance and the borrowed hierarchy is never stale — the fast
// path's best case. allParams=true adds conductance and film draws
// (die_k, h), which perturb the matrix itself: warm starts are a few
// percent off and the stale hierarchy really is stale — the fast
// path's hard case.
func mcSolverBoundRequest(allParams bool) *api.MonteCarloRequest {
	r := &api.MonteCarloRequest{
		Chip: "lp", Chips: 1, Coolant: "water",
		GridNX: 128, GridNY: 128,
		Samples: 8, Seed: 7,
		Params: map[string]mc.Dist{
			"ambient_c": {Kind: "normal", Mean: 30, Sigma: 2},
		},
	}
	if allParams {
		r.Params["die_k"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.1}
		r.Params["h"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.2}
	}
	return r
}

func benchMonteCarloSolverBound(b *testing.B, disable, allParams bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := New(Config{DisableStructuralReuse: disable})
		in, err := e.Submit(mcSolverBoundRequest(allParams))
		if err != nil {
			b.Fatal(err)
		}
		got, err := e.Wait(context.Background(), in.ID)
		if err != nil || got.State != StateDone {
			b.Fatalf("wait: %v, state %s %s", err, got.State, got.Error)
		}
		m := e.Metrics()
		e.Close()
		if !disable {
			// Guard the fast path actually engaging: a counter that
			// sits at zero means this benchmark is comparing nothing.
			if m.AssemblySymbolicHits == 0 || m.PrecondReused == 0 {
				b.Fatalf("fast path dark: symbolic hits %d, precond reused %d",
					m.AssemblySymbolicHits, m.PrecondReused)
			}
			b.ReportMetric(float64(m.AssemblySymbolicHits), "symbolic-hits")
			b.ReportMetric(float64(m.PrecondReused), "precond-reused")
			b.ReportMetric(float64(m.PrecondRefreshed), "precond-refreshed")
		}
	}
}

// BenchmarkMonteCarloFastPath runs the MG-sized montecarlo workloads
// on the structural fast path: value-only reassembly through the
// shared sparsity skeleton, borrowed (stale) reference hierarchies and
// nominal-basis warm starts.
func BenchmarkMonteCarloFastPath(b *testing.B) {
	b.Run("deduped-class", func(b *testing.B) { benchMonteCarloSolverBound(b, false, false) })
	b.Run("all-params", func(b *testing.B) { benchMonteCarloSolverBound(b, false, true) })
}

// BenchmarkMonteCarloFullRebuild is the pre-structural baseline: the
// identical workloads with every cell paying full symbolic assembly,
// its own multigrid hierarchy build and cold basis solves. The ratio
// to BenchmarkMonteCarloFastPath is the PR's acceptance number (≥2× on
// the deduped-class shape).
func BenchmarkMonteCarloFullRebuild(b *testing.B) {
	b.Run("deduped-class", func(b *testing.B) { benchMonteCarloSolverBound(b, true, false) })
	b.Run("all-params", func(b *testing.B) { benchMonteCarloSolverBound(b, true, true) })
}
