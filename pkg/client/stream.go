package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"waterimm/internal/api"
)

// StreamJob attaches to a cosimstream job's Server-Sent Event feed
// (GET /v1/jobs/{id}/stream) and invokes fn once per interval event,
// in sequence order, until the stream's terminal done event arrives —
// whose job snapshot is returned. fromSeq is the last sequence number
// the caller already holds (0 for a fresh stream); intervals at or
// below it are never delivered, which makes reconnecting after a
// dropped stream duplicate-free.
//
// An error returned by fn aborts the stream and is returned verbatim.
// A stream that ends without a done event (the connection dropped, or
// the server went away mid-feed) is an error too; CosimStream wraps
// this call with the resubmit-and-resume loop most callers want.
func (c *Client) StreamJob(ctx context.Context, id string, fromSeq int, fn func(api.CosimStreamInterval) error) (*Job, error) {
	u := *c.base
	u.Path = "/v1/jobs/" + url.PathEscape(id) + "/stream"
	if fromSeq > 0 {
		u.RawQuery = "from=" + strconv.Itoa(fromSeq)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, apiError(resp.StatusCode, body, resp.Header)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "interval":
				var iv api.CosimStreamInterval
				if err := json.Unmarshal([]byte(data), &iv); err != nil {
					return nil, fmt.Errorf("client: stream %s: bad interval payload: %w", id, err)
				}
				if iv.Seq > fromSeq {
					if fn != nil {
						if err := fn(iv); err != nil {
							return nil, err
						}
					}
					fromSeq = iv.Seq
				}
			case "done":
				var j Job
				if err := json.Unmarshal([]byte(data), &j); err != nil {
					return nil, fmt.Errorf("client: stream %s: bad done payload: %w", id, err)
				}
				return &j, nil
			}
			event, data = "", ""
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = line[6:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: stream %s dropped: %w", id, err)
	}
	return nil, fmt.Errorf("client: stream %s ended without a done event", id)
}

// CosimStream runs an interval-coupled co-simulation as a streaming
// job: it submits req, attaches to the SSE feed, and calls fn (which
// may be nil) exactly once per interval in sequence order, returning
// the final response when the run completes.
//
// The call survives server restarts. When the stream drops or the job
// parks canceled (the backend drained and checkpointed it), the
// request is resubmitted — the server resumes the solve from its disk
// checkpoint and the fresh feed is deduplicated against the last
// sequence number already delivered, so fn still sees each interval
// exactly once. Up to MaxRetries reconnects are attempted; errors
// from fn and non-transient API errors abort immediately.
func (c *Client) CosimStream(ctx context.Context, req *api.CosimStreamRequest, fn func(api.CosimStreamInterval) error) (*api.CosimStreamResponse, error) {
	last := 0
	var fnErr error
	wrapped := func(iv api.CosimStreamInterval) error {
		if iv.Seq <= last {
			return nil
		}
		last = iv.Seq
		if fn != nil {
			if err := fn(iv); err != nil {
				fnErr = err
				return err
			}
		}
		return nil
	}
	for attempt := 0; ; attempt++ {
		j, err := c.SubmitJob(ctx, req)
		if err != nil {
			return nil, err
		}
		final, err := c.StreamJob(ctx, j.ID, last, wrapped)
		if err != nil {
			if fnErr != nil {
				return nil, fnErr
			}
			var ae *APIError
			if errors.As(err, &ae) && !ae.Transient() {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if attempt >= c.MaxRetries {
				return nil, err
			}
		} else {
			switch final.State {
			case "done":
				var resp api.CosimStreamResponse
				if err := decodeInto(final.Result, &resp); err != nil {
					return nil, err
				}
				return &resp, nil
			case "canceled":
				// The backend drained mid-run and checkpointed the
				// solve; resubmitting resumes it where it parked.
				if attempt >= c.MaxRetries {
					return nil, fmt.Errorf("client: stream job %s still canceled after %d attempts: %s", final.ID, attempt+1, final.Error)
				}
			default:
				return nil, fmt.Errorf("client: stream job %s ended %s: %s", final.ID, final.State, final.Error)
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.retryDelay(attempt, 0)):
		}
	}
}
