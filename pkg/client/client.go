// Package client is the typed Go client of the watersrvd HTTP API.
//
// The synchronous helpers (Plan, Cosim, Sweep, MonteCarlo) mirror the
// server's synchronous endpoints: they block until the simulation
// finishes, transparently falling back to the async job API when the
// server answers 202 because the request outlived its sync budget.
// The job helpers (SubmitJob, Job, Result, Cancel, WaitJob) expose
// the async surface directly for callers that want to multiplex work;
// SubmitJob speaks the canonical typed job envelope ({"type": ...,
// "request": ...}) and accepts every request kind.
//
// Server errors arrive as *APIError carrying the stable machine
// code of the JSON error envelope. Capacity errors — 429 (queue
// full, load shed) and 503 (overloaded, draining) — are retried
// automatically with full-jitter exponential backoff, using any
// Retry-After the server sends as a floor, before surfacing.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"waterimm/internal/api"
)

// Client talks to one watersrvd instance. The zero value is not
// usable; construct with New.
type Client struct {
	base *url.URL
	http *http.Client

	// MaxRetries bounds the automatic retries of 429/503 responses
	// (queue full, shed, draining). Default 4.
	MaxRetries int
	// RetryBackoff seeds the exponential backoff: after the i-th
	// failed attempt the client sleeps a uniformly random duration in
	// [0, min(RetryBackoffMax, RetryBackoff·2^i)] (full jitter), but
	// never less than the server's Retry-After. Default 250 ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff ceiling. Default 4 s.
	RetryBackoffMax time.Duration
	// PollInterval paces Wait's status polling. Default 50 ms.
	PollInterval time.Duration
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:            u,
		http:            httpClient,
		MaxRetries:      4,
		RetryBackoff:    250 * time.Millisecond,
		RetryBackoffMax: 4 * time.Second,
		PollInterval:    50 * time.Millisecond,
	}, nil
}

// APIError is a non-2xx server response decoded from the JSON error
// envelope {"error": {"code": ..., "message": ...}}. Dispatch on
// Code, not Message.
type APIError struct {
	StatusCode int    // HTTP status
	Code       string // stable machine code ("queue_full", "not_found", ...)
	Message    string // human-readable detail
	// RequestID is the server's X-Request-Id for this exchange (also
	// present in the error envelope) — quote it when filing a report
	// so the operator can grep the exact request across the router and
	// backend logs.
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("client: server answered %d %s: %s (request %s)", e.StatusCode, e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("client: server answered %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// Transient reports whether the error is worth retrying: the server
// was up but had no capacity at that moment.
func (e *APIError) Transient() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable
}

// Job mirrors the server's job snapshot. Result stays raw JSON; the
// typed helpers decode it into the response of the job's kind.
type Job struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Deduped  bool   `json:"deduped,omitempty"`
	Error    string `json:"error,omitempty"`
	// ErrorCode is the stable machine code of a failed job
	// ("deadline_exceeded", "shed", "panic", "canceled", "internal").
	ErrorCode string             `json:"error_code,omitempty"`
	Progress  *api.SweepProgress `json:"progress,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	Result json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the job has stopped moving.
func (j *Job) Terminal() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// Plan runs a plan request to completion.
func (c *Client) Plan(ctx context.Context, req *api.PlanRequest) (*api.PlanResponse, error) {
	var resp api.PlanResponse
	if err := c.sync(ctx, "/v1/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cosim runs a co-simulation request to completion.
func (c *Client) Cosim(ctx context.Context, req *api.CosimRequest) (*api.CosimResponse, error) {
	var resp api.CosimResponse
	if err := c.sync(ctx, "/v1/cosim", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep runs a batched sweep request to completion.
func (c *Client) Sweep(ctx context.Context, req *api.SweepRequest) (*api.SweepResponse, error) {
	var resp api.SweepResponse
	if err := c.sync(ctx, "/v1/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MonteCarlo runs a Monte-Carlo uncertainty sweep to completion and
// returns the reduced statistics (quantiles, exceedance probability,
// Sobol indices). Large sample counts routinely outlive the server's
// sync budget; like the other sync helpers this falls through to the
// async job API transparently, but callers wanting progress reporting
// should SubmitJob and poll.
func (c *Client) MonteCarlo(ctx context.Context, req *api.MonteCarloRequest) (*api.MonteCarloResponse, error) {
	var resp api.MonteCarloResponse
	if err := c.sync(ctx, "/v1/montecarlo", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Audit runs a chip-roadmap audit synchronously (POST /v1/audit): for
// every (chip, coolant) pair, the first year — under compounding
// power-density growth — the pair fails on critical heat flux or on
// the junction threshold.
func (c *Client) Audit(ctx context.Context, req *api.AuditRequest) (*api.AuditResponse, error) {
	var resp api.AuditResponse
	if err := c.sync(ctx, "/v1/audit", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitJob enqueues a request of any kind — plan, cosim, sweep,
// montecarlo — on the canonical job endpoint (POST /v1/jobs) under
// the typed job envelope, and returns the job's initial snapshot
// (terminal immediately on a cache hit).
func (c *Client) SubmitJob(ctx context.Context, req api.Request) (*Job, error) {
	env, err := api.NewJobEnvelope(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", env, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Submit enqueues a request on the async job API.
//
// Deprecated: Submit is the pre-envelope name; it now delegates to
// SubmitJob. New code should call SubmitJob.
func (c *Client) Submit(ctx context.Context, req api.Request) (*Job, error) {
	return c.SubmitJob(ctx, req)
}

// Job fetches the current snapshot of a job.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Result fetches a job snapshot including its result payload. While
// the job is still pending the server answers 202 and Result returns
// the snapshot with a nil Result field — poll or use Wait.
func (c *Client) Result(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Cancel requests cancellation and returns the post-cancel snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// WaitJob polls until the job reaches a terminal state and returns
// its final snapshot including the result payload.
func (c *Client) WaitJob(ctx context.Context, id string) (*Job, error) {
	tick := time.NewTicker(c.PollInterval)
	defer tick.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return c.Result(ctx, id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}

// Wait polls a job to completion.
//
// Deprecated: Wait is the pre-envelope name; it now delegates to
// WaitJob. New code should call WaitJob.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	return c.WaitJob(ctx, id)
}

// Metrics fetches the engine metrics snapshot as generic JSON.
func (c *Client) Metrics(ctx context.Context) (map[string]json.RawMessage, error) {
	var m map[string]json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// sync posts req to a synchronous endpoint and decodes the bare
// response into out. A 202 means the request outlived the server's
// sync budget: the job keeps running, so fall through to the async
// API and wait for it there.
func (c *Client) sync(ctx context.Context, path string, req api.Request, out any) error {
	status, body, header, err := c.roundTrip(ctx, http.MethodPost, path, req)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return decodeInto(body, out)
	case http.StatusAccepted:
		var j Job
		if err := decodeInto(body, &j); err != nil {
			return err
		}
		final, err := c.Wait(ctx, j.ID)
		if err != nil {
			return err
		}
		if final.State != "done" {
			return fmt.Errorf("client: job %s ended %s: %s", final.ID, final.State, final.Error)
		}
		return decodeInto(final.Result, out)
	default:
		return apiError(status, body, header)
	}
}

// do performs one API call expecting a 2xx JSON body decoded into
// out (which may be nil to discard it).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	status, body, header, err := c.roundTrip(ctx, method, path, in)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		return apiError(status, body, header)
	}
	if out == nil {
		return nil
	}
	return decodeInto(body, out)
}

// roundTrip sends one request, retrying transient 429/503s with
// full-jitter backoff, and returns the final status, body, and
// response headers. Non-2xx statuses are returned, not errors; callers
// map them (202 is meaningful to sync and Result).
func (c *Client) roundTrip(ctx context.Context, method, path string, in any) (int, []byte, http.Header, error) {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return 0, nil, nil, fmt.Errorf("client: encode request: %w", err)
		}
	}
	u := *c.base
	u.Path = path
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("client: build request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil, nil, fmt.Errorf("client: read response: %w", err)
		}
		if retryable(resp.StatusCode) && attempt < c.MaxRetries {
			select {
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err()
			case <-time.After(c.retryDelay(attempt, retryAfter(resp.Header))):
			}
			continue
		}
		return resp.StatusCode, b, resp.Header, nil
	}
}

// retryable reports whether a status signals a transient capacity
// condition: 429 is this one request turned away (queue full, shed),
// 503 is the whole service overloaded or draining.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable
}

// retryDelay picks the sleep before retry attempt+1: a uniformly
// random duration up to the exponentially growing ceiling ("full
// jitter", which decorrelates a thundering herd of shed clients), but
// never below the server's own Retry-After hint.
func (c *Client) retryDelay(attempt int, serverHint time.Duration) time.Duration {
	ceiling := c.RetryBackoff
	for i := 0; i < attempt && ceiling < c.RetryBackoffMax; i++ {
		ceiling *= 2
	}
	if c.RetryBackoffMax > 0 && ceiling > c.RetryBackoffMax {
		ceiling = c.RetryBackoffMax
	}
	d := serverHint
	if ceiling > 0 {
		if j := time.Duration(rand.Int64N(int64(ceiling) + 1)); j > d {
			d = j
		}
	}
	return d
}

// retryAfter parses a Retry-After header, either delta-seconds or an
// HTTP-date; absent or malformed values yield 0. Both forms clamp to
// zero at the end: an HTTP-date in the past (or negative delta
// seconds) means "retry now", and must never become a negative
// duration — retryDelay uses the result as a backoff floor, and a
// negative floor would silently disable the floor comparison.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = time.Until(at)
	}
	if d < 0 {
		return 0
	}
	return d
}

func decodeInto(body []byte, out any) error {
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decode response: %w (body %.120s)", err, body)
	}
	return nil
}

// apiError decodes the error envelope, degrading gracefully when the
// body is not the expected JSON (a proxy error page, say). The request
// ID comes from the envelope when present, else from the X-Request-Id
// response header — either way the client surfaces the server's
// correlation handle.
func apiError(status int, body []byte, header http.Header) error {
	reqID := ""
	if header != nil {
		reqID = header.Get("X-Request-Id")
	}
	var e struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
		return &APIError{StatusCode: status, Code: "unknown", Message: string(body), RequestID: reqID}
	}
	if e.Error.RequestID != "" {
		reqID = e.Error.RequestID
	}
	return &APIError{StatusCode: status, Code: e.Error.Code, Message: e.Error.Message, RequestID: reqID}
}
