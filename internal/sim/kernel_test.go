package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Errorf("final time %d, want 30", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered at %d: %v", i, v)
		}
	}
}

func TestRandomOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var times []Time
		var fired []Time
		for i := 0; i < 200; i++ {
			at := Time(rng.Intn(1000))
			times = append(times, at)
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run(nil)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		k.At(5, func() {})
	})
	k.Run(nil)
}

func TestAfterAndNestedScheduling(t *testing.T) {
	k := NewKernel()
	var depth int
	var schedule func()
	schedule = func() {
		if depth < 5 {
			depth++
			k.After(7, schedule)
		}
	}
	schedule()
	k.Run(nil)
	if k.Now() != 35 {
		t.Errorf("5 nested 7-tick delays should end at 35, got %d", k.Now())
	}
	if k.Executed != 5 {
		t.Errorf("executed %d events, want 5", k.Executed)
	}
}

func TestRunStopPredicate(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i), func() { count++ })
	}
	k.Run(func() bool { return count >= 4 })
	if count != 4 {
		t.Errorf("stop predicate let %d events through, want 4", count)
	}
	if k.Pending() != 6 {
		t.Errorf("%d events pending, want 6", k.Pending())
	}
}

func TestRunFor(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunFor(20)
	if len(fired) != 2 {
		t.Fatalf("RunFor(20) fired %d events, want 2", len(fired))
	}
	if k.Now() != 20 {
		t.Errorf("RunFor must advance the clock to the deadline, got %d", k.Now())
	}
}

func TestCycle(t *testing.T) {
	if c := Cycle(1e9); c != 1_000_000 {
		t.Errorf("1 GHz cycle = %d fs, want 1e6", c)
	}
	if c := Cycle(2e9); c != 500_000 {
		t.Errorf("2 GHz cycle = %d fs, want 5e5", c)
	}
	// 3.6 GHz rounds to the nearest femtosecond.
	if c := Cycle(3.6e9); c != 277_778 {
		t.Errorf("3.6 GHz cycle = %d fs, want 277778", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive frequency")
		}
	}()
	Cycle(0)
}

func TestSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Errorf("2s = %g", s)
	}
	if s := (500 * Millisecond).Seconds(); s != 0.5 {
		t.Errorf("500ms = %g", s)
	}
}
