package proto

import "math"

// Seasonal water-temperature models for the natural-water deployment
// scenarios of Section 4.4. The coolant temperature is the thermal
// model's ambient, so the season directly moves every junction
// temperature — and hence the planner's feasible frequency. The
// profiles are sinusoidal year cycles fitted to published
// climatology-class numbers:
//
//   - Tokyo Bay surface water: ~8 °C in February to ~27 °C in August;
//   - a temperate river: ~4 °C to ~22 °C;
//   - a deep lake intake (CSCS-style): ~6 °C year-round;
//   - a machine-room chiller loop: constant 25 °C (the Table 2
//     baseline).
type WaterBody int

// Water bodies for deployment studies.
const (
	BodyTokyoBay WaterBody = iota
	BodyRiver
	BodyDeepLake
	BodyChilledTank
)

func (b WaterBody) String() string {
	switch b {
	case BodyTokyoBay:
		return "tokyo-bay"
	case BodyRiver:
		return "river"
	case BodyDeepLake:
		return "deep-lake"
	case BodyChilledTank:
		return "chilled-tank"
	}
	return "water-body"
}

// WaterBodies lists the deployment options.
func WaterBodies() []WaterBody {
	return []WaterBody{BodyTokyoBay, BodyRiver, BodyDeepLake, BodyChilledTank}
}

// seasonalProfile holds a sinusoidal annual cycle.
type seasonalProfile struct {
	meanC, amplitudeC float64
	// peakDay is the day-of-year of the warmest water (thermal lag
	// puts coastal water peaks in late August).
	peakDay float64
}

func profileOf(b WaterBody) seasonalProfile {
	switch b {
	case BodyTokyoBay:
		return seasonalProfile{meanC: 17.5, amplitudeC: 9.5, peakDay: 235}
	case BodyRiver:
		return seasonalProfile{meanC: 13, amplitudeC: 9, peakDay: 215}
	case BodyDeepLake:
		return seasonalProfile{meanC: 6, amplitudeC: 1, peakDay: 235}
	default:
		return seasonalProfile{meanC: 25, amplitudeC: 0, peakDay: 0}
	}
}

// WaterTempC returns the body's water temperature on a day of year
// (0-365).
func (b WaterBody) WaterTempC(dayOfYear float64) float64 {
	p := profileOf(b)
	return p.meanC + p.amplitudeC*math.Cos(2*math.Pi*(dayOfYear-p.peakDay)/365)
}

// WarmestC and CoolestC bound the annual cycle.
func (b WaterBody) WarmestC() float64 {
	p := profileOf(b)
	return p.meanC + p.amplitudeC
}

// CoolestC returns the annual minimum water temperature.
func (b WaterBody) CoolestC() float64 {
	p := profileOf(b)
	return p.meanC - p.amplitudeC
}
