package service

import "container/list"

// lruCache is a plain LRU over canonical request hashes. It is not
// internally synchronized: the engine calls it under its own mutex.
type lruCache struct {
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
