package api

import (
	"math"
	"strings"
	"testing"
)

func TestAuditNormalizeDefaults(t *testing.T) {
	r := &AuditRequest{}
	r.Normalize()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Chips) != 1 || r.Chips[0] != "low-power" {
		t.Errorf("default chips %v", r.Chips)
	}
	if len(r.Coolants) != 5 {
		t.Errorf("default coolants %v, want all five", r.Coolants)
	}
	if r.StartYear != 2026 || r.EndYear != 2033 {
		t.Errorf("default years %d–%d", r.StartYear, r.EndYear)
	}
	if r.GrowthPerYear != 1.16 {
		t.Errorf("default growth %v", r.GrowthPerYear)
	}
	if r.TotalCells() != 1*5*8 {
		t.Errorf("default TotalCells %d, want 40", r.TotalCells())
	}
}

func TestAuditCanonicalNames(t *testing.T) {
	// Aliases resolve, duplicates collapse, order is sorted — so every
	// spelling shares one cache key.
	a := &AuditRequest{Chips: []string{"lp", "hf", "low-power"}, Coolants: []string{"water", "air", "water"}}
	b := &AuditRequest{Chips: []string{"hf", "low-power"}, Coolants: []string{"air", "water"}}
	a.Normalize()
	if got, want := strings.Join(a.Chips, ","), "high-frequency,low-power"; got != want {
		t.Errorf("chips %q, want %q", got, want)
	}
	if got, want := strings.Join(a.Coolants, ","), "air,water"; got != want {
		t.Errorf("coolants %q, want %q", got, want)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Error("equivalent spellings produced different cache keys")
	}
}

func TestAuditValidateRejects(t *testing.T) {
	bad := []*AuditRequest{
		{Chips: []string{"no-such-chip"}},
		{Coolants: []string{"lava"}},
		{StartYear: 1800, EndYear: 1801},
		{StartYear: 2030, EndYear: 2029},
		{StartYear: 2026, EndYear: 2060}, // span over the year cap
		{GrowthPerYear: -1},
		{GrowthPerYear: 3.0}, // 3^7 ≈ 2187 — far outside the perturb window
		{ThresholdC: 500},
		{GridNX: 3},
	}
	for i, r := range bad {
		r.Normalize()
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid request passed validation: %+v", i, r)
		}
	}
}

func TestAuditCellCap(t *testing.T) {
	r := &AuditRequest{
		Chips:     []string{"low-power", "hf", "e5", "phi", "irds2033"},
		StartYear: 2026, EndYear: 2050, GrowthPerYear: 1.0,
	}
	r.Normalize()
	if cells := r.TotalCells(); cells <= MaxAuditCells {
		t.Fatalf("test setup: %d cells does not exceed the cap", cells)
	}
	if err := r.Validate(); err == nil {
		t.Error("over-cap expansion passed validation")
	}
}

// TestAuditCellsSharePlanKeyspace is the dedup guarantee: an expanded
// audit cell must carry the exact cache key of the hand-built perturbed
// plan request that any other workload (sweep, montecarlo, a plain
// /v1/simulate call) would generate for the same physics.
func TestAuditCellsSharePlanKeyspace(t *testing.T) {
	r := &AuditRequest{Chips: []string{"low-power"}, Coolants: []string{"water"},
		StartYear: 2026, EndYear: 2028, GrowthPerYear: 1.16}
	r.Normalize()
	cells := r.Cells()
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(cells))
	}
	for i, cell := range cells {
		year := 2026 + i
		scale := r.YearScale(year)
		hand := &PlanRequest{Chip: "low-power", Chips: 1, Coolant: "water",
			ThresholdC: 80, GridNX: 32, GridNY: 32, EvalGHz: 2,
			Perturb: &Perturb{PDyn: scale, PStat: scale}}
		if got, want := cell.CacheKey(), hand.CacheKey(); got != want {
			t.Errorf("year %d: cell key %s != hand-built plan key %s", year, got, want)
		}
		if cell.Kind() != "plan" {
			t.Errorf("cell kind %q, want plan", cell.Kind())
		}
	}
}

func TestAuditCellsDeterministic(t *testing.T) {
	r := &AuditRequest{}
	r.Normalize()
	a, b := r.Cells(), r.Cells()
	if len(a) != r.TotalCells() {
		t.Fatalf("expanded %d cells, want %d", len(a), r.TotalCells())
	}
	for i := range a {
		if a[i].CacheKey() != b[i].CacheKey() {
			t.Fatalf("cell %d key differs across expansions", i)
		}
	}
	// The growth axis is monotone: later years carry strictly larger
	// power scales (growth > 1), anchored at exactly 1.
	if a[0].Perturb == nil || a[0].Perturb.PDyn != 1 {
		t.Fatalf("year-0 cell perturb %+v, want explicit PDyn=1", a[0].Perturb)
	}
	for i := 1; i < r.EndYear-r.StartYear+1; i++ {
		if a[i].Perturb.PDyn <= a[i-1].Perturb.PDyn {
			t.Errorf("year %d scale %v not above year %d scale %v",
				r.StartYear+i, a[i].Perturb.PDyn, r.StartYear+i-1, a[i-1].Perturb.PDyn)
		}
	}
	// PDyn and PStat move together — the audit scales total power.
	for i, c := range a {
		if c.Perturb.PDyn != c.Perturb.PStat {
			t.Errorf("cell %d: PDyn %v != PStat %v", i, c.Perturb.PDyn, c.Perturb.PStat)
		}
	}
}

func TestAuditYearScaleQuantized(t *testing.T) {
	r := &AuditRequest{GrowthPerYear: 1.16, StartYear: 2026, EndYear: 2033}
	r.Normalize()
	want := math.Pow(1.16, 7)
	got := r.YearScale(2033)
	if math.Abs(got-want) > 1e-5*want {
		t.Errorf("YearScale(2033) = %v, far from %v", got, want)
	}
	// Quantization matches the expanded cell bit-for-bit.
	cells := (&AuditRequest{Chips: []string{"low-power"}, Coolants: []string{"water"},
		StartYear: 2026, EndYear: 2033, GrowthPerYear: 1.16})
	cells.Normalize()
	expanded := cells.Cells()
	if expanded[7].Perturb.PDyn != got {
		t.Errorf("cell scale %v != YearScale %v", expanded[7].Perturb.PDyn, got)
	}
}

func TestAuditEnvelope(t *testing.T) {
	raw := []byte(`{"type":"audit","request":{"chips":["lp"],"coolants":["water"],"start_year":2026,"end_year":2028}}`)
	req, err := DecodeJobRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := req.(*AuditRequest)
	if !ok {
		t.Fatalf("unwrapped %T, want *AuditRequest", req)
	}
	ar.Normalize()
	if err := ar.Validate(); err != nil {
		t.Fatal(err)
	}
	if ar.Chips[0] != "low-power" {
		t.Errorf("alias not resolved: %v", ar.Chips)
	}
	// The typed-jobs registry knows the kind.
	if _, ok := jobTypes("audit"); !ok {
		t.Error("jobTypes does not know audit")
	}
	found := false
	for _, n := range JobTypeNames() {
		if n == "audit" {
			found = true
		}
	}
	if !found {
		t.Errorf("JobTypeNames() = %v, missing audit", JobTypeNames())
	}
}
