package api

import (
	"strings"
	"testing"

	"waterimm/internal/mc"
)

func TestDecodeJobRequestTypedEnvelope(t *testing.T) {
	cases := []struct {
		body string
		kind string
	}{
		{`{"type": "simulate", "request": {"chips": 2}}`, "plan"},
		{`{"type": "plan", "request": {"chips": 2}}`, "plan"},
		{`{"type": "cosim", "request": {"benchmark": "ep"}}`, "cosim"},
		{`{"type": "sweep", "request": {"depths": [1, 2]}}`, "sweep"},
		{`{"type": "montecarlo", "request": {"samples": 16, "params": {"h": {"kind": "uniform", "min": 0.5, "max": 2}}}}`, "montecarlo"},
	}
	for _, c := range cases {
		req, err := DecodeJobRequest([]byte(c.body))
		if err != nil {
			t.Errorf("decode %s: %v", c.body, err)
			continue
		}
		if req.Kind() != c.kind {
			t.Errorf("decode %s: kind %q, want %q", c.body, req.Kind(), c.kind)
		}
	}
}

func TestDecodeJobRequestLegacyUnion(t *testing.T) {
	req, err := DecodeJobRequest([]byte(`{"plan": {"chips": 3}}`))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := req.(*PlanRequest)
	if !ok || p.Chips != 3 {
		t.Fatalf("legacy union decoded to %#v", req)
	}
	// The new kind works through the legacy union too.
	req, err = DecodeJobRequest([]byte(`{"montecarlo": {"samples": 16, "params": {"h": {"kind": "uniform", "min": 0.5, "max": 2}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind() != "montecarlo" {
		t.Fatalf("kind %q, want montecarlo", req.Kind())
	}
}

func TestDecodeJobRequestRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown type", `{"type": "frobnicate", "request": {}}`, "unknown type"},
		{"missing payload", `{"type": "simulate"}`, "missing"},
		{"unknown envelope field", `{"type": "simulate", "request": {}, "extra": 1}`, "unknown field"},
		{"unknown payload field", `{"type": "simulate", "request": {"chipz": 1}}`, "unknown field"},
		{"legacy unknown field", `{"plan": {"chipz": 1}}`, "unknown field"},
		{"empty body", `{}`, "no request"},
		{"two legacy kinds", `{"plan": {}, "cosim": {}}`, "exactly one"},
		{"not json", `nope`, "decode"},
	}
	for _, c := range cases {
		_, err := DecodeJobRequest([]byte(c.body))
		if err == nil {
			t.Errorf("%s: decoded without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// Round trip: NewJobEnvelope of each kind decodes back to an
// equivalent request, and the plan kind travels under its public
// "simulate" name.
func TestJobEnvelopeRoundTrip(t *testing.T) {
	reqs := []Request{
		&PlanRequest{Chips: 2},
		&CosimRequest{Benchmark: "cg"},
		&SweepRequest{Depths: []int{1, 2}},
		&MonteCarloRequest{Samples: 16, Params: map[string]mc.Dist{"h": {Kind: "uniform", Min: 0.5, Max: 2}}},
	}
	for _, req := range reqs {
		env, err := NewJobEnvelope(req)
		if err != nil {
			t.Fatalf("%s: %v", req.Kind(), err)
		}
		if req.Kind() == "plan" && env.Type != "simulate" {
			t.Fatalf("plan kind must travel as %q, got %q", "simulate", env.Type)
		}
		back, err := env.Decode()
		if err != nil {
			t.Fatalf("%s: decode back: %v", req.Kind(), err)
		}
		if back.Kind() != req.Kind() {
			t.Fatalf("round trip kind %q, want %q", back.Kind(), req.Kind())
		}
		if back.CacheKey() != req.CacheKey() {
			t.Fatalf("%s: round trip moved the cache key", req.Kind())
		}
	}
}
