package npb

import (
	"strings"
	"testing"

	"waterimm/internal/coherence"
	"waterimm/internal/cpu"
	"waterimm/internal/sim"
)

func TestBenchmarksValidate(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 9 {
		t.Fatalf("the paper runs nine NPB kernels, got %d", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
	}
	for _, want := range []string{"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"} {
		if !seen[want] {
			t.Errorf("missing kernel %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("cg")
	if err != nil || b.Name != "cg" {
		t.Fatalf("ByName(cg) = %v, %v", b.Name, err)
	}
	if _, err := ByName("linpack"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestValidateCatchesBadKernels(t *testing.T) {
	b, _ := ByName("cg")
	b.ComputePerMemOp = 0
	if err := b.Validate(); err == nil {
		t.Error("expected compute error")
	}
	b, _ = ByName("cg")
	b.SharedFrac = 1.5
	if err := b.Validate(); err == nil {
		t.Error("expected fraction error")
	}
	b, _ = ByName("bt")
	b.StrideLines = 0
	if err := b.Validate(); err == nil {
		t.Error("expected stride error")
	}
}

// drain pulls a stream to completion, returning per-kind counts.
func drain(t *testing.T, s cpu.Stream, limit int) map[cpu.OpKind]int {
	t.Helper()
	counts := map[cpu.OpKind]int{}
	for i := 0; i < limit; i++ {
		op := s.Next()
		counts[op.Kind]++
		if op.Kind == cpu.OpDone {
			return counts
		}
	}
	t.Fatal("stream never terminated")
	return nil
}

func TestStreamTerminatesWithExpectedOps(t *testing.T) {
	for _, b := range Benchmarks() {
		s := b.Stream(0, 24, 1, 0.1)
		counts := drain(t, s, b.MemOps*10)
		memOps := counts[cpu.OpLoad] + counts[cpu.OpStore]
		want := int(float64(b.MemOps) * 0.1)
		if memOps != want {
			t.Errorf("%s: %d memory ops, want %d", b.Name, memOps, want)
		}
		if counts[cpu.OpCompute] != memOps {
			t.Errorf("%s: %d compute bursts for %d mem ops", b.Name, counts[cpu.OpCompute], memOps)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	b, _ := ByName("ft")
	a := b.Stream(3, 24, 42, 0.2)
	c := b.Stream(3, 24, 42, 0.2)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), c.Next()
		if x != y {
			t.Fatalf("op %d differs: %+v vs %+v", i, x, y)
		}
		if x.Kind == cpu.OpDone {
			return
		}
	}
}

func TestThreadsDiffer(t *testing.T) {
	b, _ := ByName("is")
	a := b.Stream(0, 24, 1, 0.2)
	c := b.Stream(1, 24, 1, 0.2)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 150 {
		t.Errorf("threads produced nearly identical streams (%d/200 identical ops)", same)
	}
}

func TestBarrierCountsMatchAcrossThreads(t *testing.T) {
	// Deadlock freedom of the barrier protocol requires every thread
	// to arrive the same number of times.
	for _, b := range Benchmarks() {
		var counts []int
		for thread := 0; thread < 4; thread++ {
			s := b.Stream(thread, 4, 9, 0.5)
			c := drain(t, s, b.MemOps*20)
			counts = append(counts, c[cpu.OpBarrier])
		}
		for _, c := range counts[1:] {
			if c != counts[0] {
				t.Errorf("%s: unequal barrier counts %v would deadlock", b.Name, counts)
			}
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	b, _ := ByName("ep") // almost entirely private traffic
	seen := map[uint64]int{}
	for thread := 0; thread < 8; thread++ {
		s := b.Stream(thread, 8, 1, 0.3)
		for {
			op := s.Next()
			if op.Kind == cpu.OpDone {
				break
			}
			if op.Kind == cpu.OpLoad || op.Kind == cpu.OpStore {
				if op.Addr < sharedBase {
					region := op.Addr / privateSpace
					if prev, ok := seen[region]; ok && prev != thread {
						t.Fatalf("threads %d and %d share private region %d", prev, thread, region)
					}
					seen[region] = thread
				}
			}
		}
	}
}

func TestSequentialKernelsReuseLines(t *testing.T) {
	// Word-granular streaming: sequential kernels must revisit each
	// line wordsPerLine times, keeping L1 hit rates realistic.
	b, _ := ByName("lu")
	s := b.Stream(0, 4, 1, 0.3)
	lineHits := map[uint64]int{}
	for {
		op := s.Next()
		if op.Kind == cpu.OpDone {
			break
		}
		if op.Kind == cpu.OpLoad || op.Kind == cpu.OpStore {
			lineHits[op.Addr&^63]++
		}
	}
	multi := 0
	for _, n := range lineHits {
		if n >= wordsPerLine/2 {
			multi++
		}
	}
	if multi < len(lineHits)/2 {
		t.Errorf("only %d/%d lines show word-level reuse", multi, len(lineHits))
	}
}

func TestScaleFloor(t *testing.T) {
	b, _ := ByName("ep")
	s := b.Stream(0, 4, 1, 1e-9)
	counts := drain(t, s, 100)
	if counts[cpu.OpLoad]+counts[cpu.OpStore] != 1 {
		t.Error("tiny scales must floor at one memory op")
	}
}

func TestParseTrace(t *testing.T) {
	src := `# demo trace
c 100
l 0x1000
s 1040
b
c 5
`
	tr, err := ParseTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 || tr.Barriers() != 1 {
		t.Fatalf("len=%d barriers=%d", tr.Len(), tr.Barriers())
	}
	s := tr.Stream()
	want := []cpu.Op{
		{Kind: cpu.OpCompute, Cycles: 100},
		{Kind: cpu.OpLoad, Addr: 0x1000},
		{Kind: cpu.OpStore, Addr: 0x1040},
		{Kind: cpu.OpBarrier},
		{Kind: cpu.OpCompute, Cycles: 5},
		{Kind: cpu.OpDone},
		{Kind: cpu.OpDone}, // idempotent past the end
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("op %d: %+v, want %+v", i, got, w)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, src := range []string{
		"c", "c 0", "c x", "l", "l zz", "q 1",
	} {
		if _, err := ParseTrace(strings.NewReader(src)); err == nil {
			t.Errorf("trace %q must fail to parse", src)
		}
	}
}

func TestTraceDrivesCore(t *testing.T) {
	// A two-line trace through the full machine.
	tr, err := ParseTrace(strings.NewReader("s 0x40\nl 0x40\n"))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys, err := coherence.New(k, coherence.DefaultConfig(1, 2.0e9))
	if err != nil {
		t.Fatal(err)
	}
	bg := cpu.NewBarrierGroup(k, 1, 0)
	c := cpu.NewCore(0, k, sys.L1s[0], cpu.NewClock(2.0e9), tr.Stream(), bg)
	c.Start()
	for k.Step() {
	}
	if !c.Done || c.Stats.Loads != 1 || c.Stats.Stores != 1 {
		t.Fatalf("trace replay failed: %+v", c.Stats)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	// Export a synthetic kernel and re-parse it: the replayed stream
	// must match the original op-for-op.
	b, _ := ByName("mg")
	var buf strings.Builder
	if err := ExportTrace(&buf, b.Stream(2, 8, 5, 0.05), 1<<20); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	orig := b.Stream(2, 8, 5, 0.05)
	replay := tr.Stream()
	for i := 0; ; i++ {
		a, c := orig.Next(), replay.Next()
		if a != c {
			t.Fatalf("op %d differs after round trip: %+v vs %+v", i, a, c)
		}
		if a.Kind == cpu.OpDone {
			break
		}
	}
}

func TestExportTraceBudget(t *testing.T) {
	b, _ := ByName("ep")
	var buf strings.Builder
	if err := ExportTrace(&buf, b.Stream(0, 4, 1, 1), 10); err == nil {
		t.Error("tiny budget must error")
	}
}
