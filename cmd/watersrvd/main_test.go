package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"waterimm/internal/api"
	"waterimm/internal/service"
)

func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Engine) {
	t.Helper()
	e := service.New(cfg)
	ts := httptest.NewServer(newHandler(e, time.Minute))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e
}

const fastPlanBody = `{"chip": "lp", "chips": 1, "grid_nx": 8, "grid_ny": 8}`

// slowPlanBody must outlive the test's cancel round-trips.
const slowPlanBody = `{"chip": "lp", "chips": 16, "grid_nx": 64, "grid_ny": 64, "converge_leakage": true}`

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestSyncPlanEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync plan: %d %s", resp.StatusCode, body)
	}
	var plan api.PlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("decode: %v in %s", err, body)
	}
	if !plan.Feasible || plan.FrequencyGHz <= 0 || plan.PeakC > 80 {
		t.Fatalf("implausible plan: %+v", plan)
	}
}

func TestSyncCosimEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := post(t, ts.URL+"/v1/cosim",
		`{"benchmark": "ep", "chips": 1, "grid_nx": 8, "grid_ny": 8, "scale": 0.1, "max_samples": 8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync cosim: %d %s", resp.StatusCode, body)
	}
	var cs api.CosimResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Seconds <= 0 || cs.Intervals == 0 || len(cs.Series) > 8 {
		t.Fatalf("implausible cosim: %+v", cs)
	}
}

// TestRepeatRequestCached is the acceptance path: an identical repeat
// request must come back from the cache, observable in the metrics.
func TestRepeatRequestCached(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp1, body1 := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached result differs:\n%s\n%s", body1, body2)
	}
	_, mbody := get(t, ts.URL+"/v1/metrics")
	var m service.Snapshot
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 || m.JobsDone != 1 {
		t.Fatalf("metrics after repeat: hits %d, done %d (want 1, 1)", m.CacheHits, m.JobsDone)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", m.CacheHitRate)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"plan": `+fastPlanBody+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var in service.JobInfo
	if err := json.Unmarshal(body, &in); err != nil {
		t.Fatal(err)
	}
	if in.ID == "" || in.State != service.StateQueued {
		t.Fatalf("submit snapshot: %+v", in)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+in.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, body)
		}
		var st service.JobInfo
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job ended %s: %s", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body = get(t, ts.URL+"/v1/jobs/"+in.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var got struct {
		Result api.PlanResponse `json:"result"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Result.Feasible {
		t.Fatalf("result payload: %s", body)
	}

	// A second identical async submit is a cache hit: 200, done.
	resp, body = post(t, ts.URL+"/v1/jobs", `{"plan": `+fastPlanBody+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, body)
	}
	var hit service.JobInfo
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.State != service.StateDone {
		t.Fatalf("cached submit snapshot: %+v", hit)
	}
}

func TestResultWhilePending(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	_, blocker := post(t, ts.URL+"/v1/jobs", `{"plan": `+slowPlanBody+`}`)
	var b service.JobInfo
	if err := json.Unmarshal(blocker, &b); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/v1/jobs/"+b.ID+"/result")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pending result: %d %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
}

// TestCancelStopsSolver is the acceptance path: cancelling a running
// job must stop the underlying solver promptly via its context.
func TestCancelStopsSolver(t *testing.T) {
	ts, e := newTestServer(t, service.Config{})
	_, body := post(t, ts.URL+"/v1/jobs", `{"plan": `+slowPlanBody+`}`)
	var in service.JobInfo
	if err := json.Unmarshal(body, &in); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}

	// Wait until it is actually running so the cancel exercises the
	// solver's context poll, not the queued fast path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := e.Status(in.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("slow job already %s; make it slower", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+in.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := e.Wait(ctx, in.ID)
	if err != nil {
		t.Fatalf("solver did not stop after cancel: %v", err)
	}
	if got.State != service.StateCanceled {
		t.Fatalf("state %s after cancel", got.State)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancel took %v", took)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	cases := []struct {
		url, body string
		want      int
	}{
		{"/v1/plan", `{not json`, http.StatusBadRequest},
		{"/v1/plan", `{"coolant": "lava"}`, http.StatusBadRequest},
		{"/v1/plan", `{"unknown_field": 1}`, http.StatusBadRequest},
		{"/v1/jobs", `{}`, http.StatusBadRequest},
		{"/v1/jobs", `{"plan": {}, "cosim": {}}`, http.StatusBadRequest},
		{"/v1/cosim", `{"ghz": 3.21}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %s: %d (want %d): %s", c.url, c.body, resp.StatusCode, c.want, body)
		}
	}
	resp, _ := get(t, ts.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/nope/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d", resp.StatusCode)
	}
}

func TestExpvarExposed(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("expvar: %d %.80s", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains mirrors the SIGTERM path main() wires:
// stop the HTTP listener, then drain the engine with jobs in flight —
// every accepted job must still finish.
func TestGracefulShutdownDrains(t *testing.T) {
	e := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(newHandler(e, time.Minute))

	ids := make([]string, 0, 4)
	for c := 1; c <= 4; c++ {
		body := fmt.Sprintf(`{"plan": {"chip": "lp", "chips": %d, "grid_nx": 8, "grid_ny": 8}}`, c)
		resp, b := post(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", c, resp.StatusCode, b)
		}
		var in service.JobInfo
		if err := json.Unmarshal(b, &in); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, in.ID)
	}

	// The shutdown sequence of main(): close the listener, then
	// drain queued and running jobs.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		got, err := e.Result(id)
		if err != nil {
			t.Fatalf("job %s after drain: %v", id, err)
		}
		if got.State != service.StateDone {
			t.Fatalf("job %s drained in state %s (%s)", id, got.State, got.Error)
		}
	}
}
