package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)
		hits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Explicitly cover the parallel path (above the serial cutoff).
	n := serialCutoff * 3
	hits := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Error("For must not invoke fn for empty ranges")
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, serialCutoff, serialCutoff*4 + 17} {
		got := ReduceSum(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		want := float64(n) * float64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("n=%d: got %g want %g", n, got, want)
		}
	}
}

func TestReduceSumDeterministic(t *testing.T) {
	n := serialCutoff * 5
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	first := ReduceSum(n, body)
	for i := 0; i < 10; i++ {
		if got := ReduceSum(n, body); got != first {
			t.Fatalf("run %d: %v != %v (non-deterministic reduction)", i, got, first)
		}
	}
}
