package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"waterimm/internal/api"
	"waterimm/internal/service"
)

const streamJobBody = `{"type": "cosimstream", "request": {
	"chip": "lp", "ghz": 1.5, "interval_s": 0.01, "intervals": 8,
	"sub_steps": 1, "grid_nx": 16, "grid_ny": 16, "max_samples": 1000}}`

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	id   string
	data string
}

// readSSE consumes an SSE body to EOF (the handler closes the stream
// after the done event) and returns the parsed events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE body: %v", err)
	}
	return events
}

// checkStreamEvents asserts a feed of contiguous intervals from
// firstSeq through lastSeq followed by exactly one terminal done
// event, and returns the done job snapshot.
func checkStreamEvents(t *testing.T, events []sseEvent, firstSeq, lastSeq int) service.JobInfo {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty SSE feed")
	}
	want := firstSeq
	for _, ev := range events[:len(events)-1] {
		if ev.name != "interval" {
			t.Fatalf("unexpected event %q before done", ev.name)
		}
		var iv api.CosimStreamInterval
		if err := json.Unmarshal([]byte(ev.data), &iv); err != nil {
			t.Fatalf("interval payload: %v", err)
		}
		if iv.Seq != want || ev.id != fmt.Sprint(want) {
			t.Fatalf("interval seq %d (id %q), want %d", iv.Seq, ev.id, want)
		}
		want++
	}
	if want != lastSeq+1 {
		t.Fatalf("feed ended at seq %d, want %d", want-1, lastSeq)
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("final event %q, want done", last.name)
	}
	var in service.JobInfo
	if err := json.Unmarshal([]byte(last.data), &in); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	return in
}

func TestStreamEndpointServesIntervalsAndDone(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", streamJobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var in service.JobInfo
	if err := json.Unmarshal(body, &in); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + in.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	done := checkStreamEvents(t, readSSE(t, sresp), 1, 8)
	if done.State != service.StateDone {
		t.Fatalf("done event state %s, error %q", done.State, done.Error)
	}
	res, ok := done.Result.(map[string]any)
	if !ok {
		t.Fatalf("done event result %T", done.Result)
	}
	if res["intervals"] != float64(8) {
		t.Fatalf("done event result: %+v", res)
	}

	// Replay with ?from=5: the feed resumes at seq 6 without
	// duplicates — the reconnect contract after a dropped stream.
	sresp, err = http.Get(ts.URL + "/v1/jobs/" + in.ID + "/stream?from=5")
	if err != nil {
		t.Fatal(err)
	}
	checkStreamEvents(t, readSSE(t, sresp), 6, 8)

	// An identical resubmission is a cache hit with no live feed; the
	// endpoint replays the recorded series indistinguishably.
	resp, body = post(t, ts.URL+"/v1/jobs", streamJobBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, body)
	}
	var hit service.JobInfo
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatalf("resubmission not a cache hit: %+v", hit)
	}
	sresp, err = http.Get(ts.URL + "/v1/jobs/" + hit.ID + "/stream?from=2")
	if err != nil {
		t.Fatal(err)
	}
	done = checkStreamEvents(t, readSSE(t, sresp), 3, 8)
	if done.State != service.StateDone || !done.CacheHit {
		t.Fatalf("cached done event: %+v", done)
	}
}

// TestClientCosimStreamEndToEnd drives the real handler through the
// client library's streaming helper: every interval is delivered to
// the callback exactly once and the final response round-trips.
func TestClientCosimStreamEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	c := newTestClient(t, ts)
	var seen []int
	resp, err := c.CosimStream(context.Background(), &api.CosimStreamRequest{
		Chip: "lp", GHz: 1.5, IntervalS: 0.01, Intervals: 8,
		SubSteps: 1, GridNX: 16, GridNY: 16, MaxSamples: 1000,
	}, func(iv api.CosimStreamInterval) error {
		seen = append(seen, iv.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Intervals != 8 || len(resp.Series) != 8 {
		t.Fatalf("response: %+v", resp)
	}
	if len(seen) != 8 {
		t.Fatalf("callback saw %v, want 1..8", seen)
	}
	for i, seq := range seen {
		if seq != i+1 {
			t.Fatalf("callback feed %v has a gap or duplicate", seen)
		}
	}

	// The identical call again is answered from cache; the callback
	// still sees the full recorded feed.
	seen = nil
	resp2, err := c.CosimStream(context.Background(), &api.CosimStreamRequest{
		Chip: "lp", GHz: 1.5, IntervalS: 0.01, Intervals: 8,
		SubSteps: 1, GridNX: 16, GridNY: 16, MaxSamples: 1000,
	}, func(iv api.CosimStreamInterval) error {
		seen = append(seen, iv.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 || resp2.Intervals != 8 {
		t.Fatalf("cached replay: seen %v resp %+v", seen, resp2)
	}
}

func TestStreamEndpointRejections(t *testing.T) {
	ts, e := newTestServer(t, service.Config{})

	// Unknown job.
	resp, err := http.Get(ts.URL + "/v1/jobs/j000000-nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}

	// Non-streaming kind.
	in, err := e.Submit(&api.PlanRequest{Chip: "lp", GridNX: 8, GridNY: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + in.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plan job stream: %d", resp.StatusCode)
	}

	// Malformed from.
	resp, body := post(t, ts.URL+"/v1/jobs", streamJobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sin service.JobInfo
	if err := json.Unmarshal(body, &sin); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sin.ID + "/stream?from=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative from: %d", resp.StatusCode)
	}
}
