package core

import (
	"context"
	"math"
	"testing"

	"waterimm/internal/material"
	"waterimm/internal/power"
	"waterimm/internal/thermal"
)

// TestWarmStartMatchesColdStart is the equivalence guarantee behind
// the batch path: a frequency search through the session machinery
// (shared assembly, superposition basis, warm-started CG) must pick
// the same VFS step as the cold baseline and land on the same field
// within the solver tolerance. Equivalence is enforced by the solver
// itself — every warm solve converges against the cold-start residual
// target (SolveOptions.TolRef) — so any drift here is a bug, not
// expected numerical slack.
func TestWarmStartMatchesColdStart(t *testing.T) {
	cases := []struct {
		chip    power.Model
		chips   int
		coolant material.Coolant
		flip    bool
	}{
		{power.LowPower, 3, material.Water, false},
		{power.LowPower, 2, material.MineralOil, true},
		{power.HighFrequency, 2, material.Fluorinert, false},
	}
	for _, tc := range cases {
		warm := fastPlanner()
		warm.Flip = tc.flip
		warm.Cache = thermal.NewSystemCache(4)
		cold := fastPlanner()
		cold.Flip = tc.flip
		cold.ColdStart = true

		ctx := context.Background()
		wPlan, wRes, err := warm.MaxFrequencyResultCtx(ctx, tc.chip, tc.chips, tc.coolant)
		if err != nil {
			t.Fatal(err)
		}
		cPlan, cRes, err := cold.MaxFrequencyResultCtx(ctx, tc.chip, tc.chips, tc.coolant)
		if err != nil {
			t.Fatal(err)
		}
		if wPlan.Feasible != cPlan.Feasible || wPlan.Step.FHz != cPlan.Step.FHz {
			t.Fatalf("%s/%d/%s: warm plan %+v diverges from cold %+v",
				tc.chip.Name, tc.chips, tc.coolant.Name, wPlan, cPlan)
		}
		if d := math.Abs(wPlan.PeakC - cPlan.PeakC); d > 1e-4 {
			t.Errorf("%s/%d/%s: peaks differ by %.2e C", tc.chip.Name, tc.chips, tc.coolant.Name, d)
		}
		if wRes == nil || cRes == nil {
			continue
		}
		var maxDiff float64
		for i := range wRes.T {
			if d := math.Abs(wRes.T[i] - cRes.T[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-4 {
			t.Errorf("%s/%d/%s: fields differ by up to %.2e C",
				tc.chip.Name, tc.chips, tc.coolant.Name, maxDiff)
		}
	}
}

// TestLeakageFixedPointMatchesColdStart extends the equivalence to the
// ConvergeLeakage path, whose solve sequence (repeated re-solves at
// moving leakage temperatures) leans hardest on the basis guesses.
func TestLeakageFixedPointMatchesColdStart(t *testing.T) {
	spec := StackSpec{Chip: power.LowPower, Chips: 4, Coolant: material.Water, FHz: 1.5e9}
	warm := fastPlanner()
	warm.ConvergeLeakage = true
	warm.Cache = thermal.NewSystemCache(4)
	cold := fastPlanner()
	cold.ConvergeLeakage = true
	cold.ColdStart = true

	a, err := warm.PeakAt(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cold.PeakAt(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a - b); d > 1e-4 {
		t.Errorf("fixed-point peaks differ by %.2e C (warm %.4f, cold %.4f)", d, a, b)
	}
}

// TestAssemblyCacheReused: two searches over the same geometry must
// assemble the conductance system once.
func TestAssemblyCacheReused(t *testing.T) {
	p := fastPlanner()
	p.Cache = thermal.NewSystemCache(4)
	for i := 0; i < 2; i++ {
		if _, err := p.MaxFrequency(power.LowPower, 2, material.Water); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Cache.Stats()
	if st.Misses != 1 || st.Hits < 1 {
		t.Fatalf("cache stats after two identical searches: %+v", st)
	}
	// A different depth is a different system: one more miss.
	if _, err := p.MaxFrequency(power.LowPower, 3, material.Water); err != nil {
		t.Fatal(err)
	}
	if st := p.Cache.Stats(); st.Misses != 2 {
		t.Fatalf("cache stats after a third, different search: %+v", st)
	}
}

// TestSessionBasisLifecycle pins the lazy-build contract: no basis on
// the first solve, a basis from the second on, and Prime building it
// eagerly.
func TestSessionBasisLifecycle(t *testing.T) {
	p := fastPlanner()
	ctx := context.Background()

	lazy, err := p.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	if _, err := lazy.Peak(ctx, 1.5e9); err != nil {
		t.Fatal(err)
	}
	if lazy.basis != nil {
		t.Fatal("basis built on the first solve")
	}
	if _, err := lazy.Peak(ctx, 1.6e9); err != nil {
		t.Fatal(err)
	}
	if lazy.basis == nil {
		t.Fatal("basis not built on the second solve")
	}

	eager, err := p.NewSession(power.LowPower, 2, material.Water)
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()
	if err := eager.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	if eager.basis == nil {
		t.Fatal("Prime did not build the basis")
	}
	// Primed and lazy sessions agree.
	a, err := lazy.Peak(ctx, 1.8e9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eager.Peak(ctx, 1.8e9)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a - b); d > 1e-4 {
		t.Errorf("primed and lazy sessions differ by %.2e C", d)
	}
}
