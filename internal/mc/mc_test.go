package mc

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
	// Frozen first draws: the stream must never change across Go
	// versions or refactors — cache keys of expanded cells depend on
	// it.
	r := NewRand(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("splitmix64(seed=1) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestDistValidate(t *testing.T) {
	bad := []Dist{
		{Kind: "uniform", Min: 1, Max: 1},
		{Kind: "uniform", Min: 2, Max: 1},
		{Kind: "normal", Mean: 1, Sigma: 0},
		{Kind: "normal", Mean: 1, Sigma: 1, Min: 3, Max: 2},
		{Kind: "lognormal", Mean: 0, Sigma: 1},
		{Kind: "lognormal", Mean: 1, Sigma: -1},
		{Kind: "beta"},
		{},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", d)
		}
	}
	good := []Dist{
		{Kind: "uniform", Min: 0.5, Max: 2},
		{Kind: "normal", Mean: 30, Sigma: 2},
		{Kind: "normal", Mean: 30, Sigma: 2, Min: 20, Max: 40},
		{Kind: "lognormal", Mean: 1, Sigma: 0.25},
		{Kind: "lognormal", Mean: 1, Sigma: 0.25, Min: 0.5, Max: 2},
	}
	for _, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", d, err)
		}
	}
}

func TestSampleStats(t *testing.T) {
	const n = 20000
	draw := func(d Dist) []float64 {
		r := NewRand(99)
		out := make([]float64, n)
		for i := range out {
			out[i] = d.Sample(r)
		}
		return out
	}

	u := Moments(draw(Dist{Kind: "uniform", Min: 2, Max: 6}))
	if math.Abs(u.Mean-4) > 0.05 {
		t.Errorf("uniform mean = %g, want ≈4", u.Mean)
	}
	if want := 16.0 / 12; math.Abs(u.Var-want) > 0.05 {
		t.Errorf("uniform var = %g, want ≈%g", u.Var, want)
	}

	nrm := Moments(draw(Dist{Kind: "normal", Mean: 30, Sigma: 2}))
	if math.Abs(nrm.Mean-30) > 0.05 {
		t.Errorf("normal mean = %g, want ≈30", nrm.Mean)
	}
	if math.Abs(math.Sqrt(nrm.Var)-2) > 0.05 {
		t.Errorf("normal std = %g, want ≈2", math.Sqrt(nrm.Var))
	}

	// Lognormal: Mean is the median, so half the mass is below it.
	ln := draw(Dist{Kind: "lognormal", Mean: 1.5, Sigma: 0.5})
	below := 0
	for _, v := range ln {
		if v <= 0 {
			t.Fatalf("lognormal sample %g not positive", v)
		}
		if v < 1.5 {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.02 {
		t.Errorf("lognormal P(X < median) = %g, want ≈0.5", frac)
	}
}

func TestTruncationRespected(t *testing.T) {
	r := NewRand(5)
	d := Dist{Kind: "normal", Mean: 0, Sigma: 10, Min: -1, Max: 1}
	for i := 0; i < 5000; i++ {
		v := d.Sample(r)
		if v < -1 || v > 1 {
			t.Fatalf("truncated sample %g outside [-1, 1]", v)
		}
	}
}

func TestPlanShapeAndDeterminism(t *testing.T) {
	dists := []Dist{
		{Kind: "uniform", Min: 0, Max: 1},
		{Kind: "normal", Mean: 5, Sigma: 1},
		{Kind: "lognormal", Mean: 1, Sigma: 0.3},
	}
	const n = 16
	p1 := NewPlan(123, dists, n)
	p2 := NewPlan(123, dists, n)
	if p1.N != n || p1.D != 3 || len(p1.Rows) != n*5 {
		t.Fatalf("plan shape N=%d D=%d rows=%d", p1.N, p1.D, len(p1.Rows))
	}
	for i := range p1.Rows {
		for k := range p1.Rows[i] {
			if p1.Rows[i][k] != p2.Rows[i][k] {
				t.Fatalf("plans for one seed differ at row %d col %d", i, k)
			}
		}
	}
	p3 := NewPlan(124, dists, n)
	if p1.Rows[0][0] == p3.Rows[0][0] && p1.Rows[1][1] == p3.Rows[1][1] {
		t.Fatal("different seeds produced an identical plan prefix")
	}
	// Saltelli structure: A_B^k row j equals A row j except column k,
	// which equals B row j's column k.
	for k := 0; k < p1.D; k++ {
		for j := 0; j < n; j++ {
			a := p1.Rows[j]
			b := p1.Rows[n+j]
			ab := p1.Rows[(2+k)*n+j]
			for c := 0; c < p1.D; c++ {
				want := a[c]
				if c == k {
					want = b[c]
				}
				if ab[c] != want {
					t.Fatalf("A_B^%d row %d col %d = %g, want %g", k, j, c, ab[c], want)
				}
			}
		}
	}
}

// TestSobolLinearModel checks the estimators on f(x) = 2·x0 + x1 with
// x0, x1 ~ U(0,1): Var = 4/12 + 1/12, S1_0 = 4/5, S1_1 = 1/5, and no
// interactions so ST ≈ S1.
func TestSobolLinearModel(t *testing.T) {
	dists := []Dist{
		{Kind: "uniform", Min: 0, Max: 1},
		{Kind: "uniform", Min: 0, Max: 1},
	}
	const n = 4096
	p := NewPlan(77, dists, n)
	f := make([]float64, len(p.Rows))
	for i, row := range p.Rows {
		f[i] = 2*row[0] + row[1]
	}
	s := SobolIndices(n, 2, f)
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"S1_0", s[0].S1, 0.8},
		{"ST_0", s[0].ST, 0.8},
		{"S1_1", s[1].S1, 0.2},
		{"ST_1", s[1].ST, 0.2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.05 {
			t.Errorf("%s = %g, want ≈%g", c.name, c.got, c.want)
		}
	}
}

func TestSobolZeroVariance(t *testing.T) {
	f := make([]float64, 4*(2+2))
	for i := range f {
		f[i] = 3.14
	}
	for _, s := range SobolIndices(4, 2, f) {
		if s.S1 != 0 || s.ST != 0 {
			t.Fatalf("constant output must give zero indices, got %+v", s)
		}
	}
}

func TestSummarizeAndQuantile(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(100 - i) // descending 100..0: order must not matter
	}
	s := Summarize(vals)
	if s.P50 != 50 || s.P5 != 5 || s.P95 != 95 {
		t.Errorf("quantiles P5=%g P50=%g P95=%g, want 5/50/95", s.P5, s.P50, s.P95)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("min=%g max=%g, want 0/100", s.Min, s.Max)
	}
	if math.Abs(s.Mean-50) > 1e-9 {
		t.Errorf("mean = %g, want 50", s.Mean)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median of {1,2} = %g, want 1.5", got)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestExceedance(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := Exceedance(vals, 2.5); got != 0.5 {
		t.Errorf("Exceedance = %g, want 0.5", got)
	}
	if got := Exceedance(vals, 4); got != 0 {
		t.Errorf("Exceedance at max = %g, want 0 (strict)", got)
	}
	if got := Exceedance(nil, 0); got != 0 {
		t.Errorf("Exceedance(nil) = %g, want 0", got)
	}
}

func TestRoundSig(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.2345678, 1.23457},
		{0.000123456789, 0.000123457},
		{-987654.321, -987654},
		{0, 0},
		{1e20, 1e20},
	}
	for _, c := range cases {
		if got := RoundSig(c.in, 6); math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("RoundSig(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
