package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	t.Cleanup(Reset)
	if Enabled() {
		t.Fatal("sites armed at start")
	}
	if err := Hit(nil, SiteExecute); err != nil {
		t.Fatalf("disarmed hit: %v", err)
	}
}

func TestErrorFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteAssemble, Fault{Kind: KindError})
	err := Hit(nil, SiteAssemble)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed hit: %v", err)
	}
	if !strings.Contains(err.Error(), SiteAssemble) {
		t.Fatalf("error does not name the site: %v", err)
	}
	if err := Hit(nil, SiteExecute); err != nil {
		t.Fatalf("other site fired: %v", err)
	}
	Disarm(SiteAssemble)
	if err := Hit(nil, SiteAssemble); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteExecute, Fault{Kind: KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), SiteExecute) {
			t.Fatalf("panic message %q does not name the site", r)
		}
	}()
	Hit(nil, SiteExecute)
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	Arm("x", Fault{Kind: KindError, After: 2, Times: 2})
	var fails int
	for i := 0; i < 10; i++ {
		if Hit(nil, "x") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("fired %d times, want 2 (skip 2, fire 2, then self-disarm)", fails)
	}
	if Enabled() {
		t.Fatal("exhausted site did not disarm itself")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	t.Cleanup(Reset)
	Seed(42)
	Arm("p", Fault{Kind: KindError, Probability: 0.3})
	var fails int
	const n = 2000
	for i := 0; i < n; i++ {
		if Hit(nil, "p") != nil {
			fails++
		}
	}
	if fails < n/5 || fails > n/2 {
		t.Fatalf("p=0.3 fired %d/%d times", fails, n)
	}
	if Fired("p") != fails {
		t.Fatalf("Fired %d, observed %d", Fired("p"), fails)
	}
}

func TestStallRespectsContext(t *testing.T) {
	t.Cleanup(Reset)
	Arm("s", Fault{Kind: KindStall, Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Hit(ctx, "s")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted stall: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall ignored the context")
	}
}

func TestStallRunsItsCourse(t *testing.T) {
	t.Cleanup(Reset)
	Arm("s", Fault{Kind: KindStall, Delay: 5 * time.Millisecond})
	if err := Hit(context.Background(), "s"); err != nil {
		t.Fatalf("completed stall: %v", err)
	}
}

func TestArmSpec(t *testing.T) {
	t.Cleanup(Reset)
	err := ArmSpec("thermal.assemble=error:p=0.5:after=1, service.execute=panic:times=1,x=stall:delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	a, s := sites[SiteAssemble], sites["x"]
	p := sites[SiteExecute]
	mu.Unlock()
	if a == nil || a.fault.Probability != 0.5 || a.fault.After != 1 || a.fault.Kind != KindError {
		t.Fatalf("assemble site: %+v", a)
	}
	if p == nil || p.fault.Kind != KindPanic || p.fault.Times != 1 {
		t.Fatalf("execute site: %+v", p)
	}
	if s == nil || s.fault.Kind != KindStall || s.fault.Delay != 250*time.Millisecond {
		t.Fatalf("stall site: %+v", s)
	}
}

func TestArmSpecRejectsGarbage(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{
		"nosite",
		"x=explode",
		"x=error:p=2",
		"x=error:p=nope",
		"x=stall:delay=soon",
		"x=error:bogus=1",
		"x=error:times",
	} {
		if err := ArmSpec(spec); err == nil {
			t.Errorf("ArmSpec(%q) accepted", spec)
		}
		Reset()
	}
}

// TestConcurrentHits exercises the registry under the race detector.
func TestConcurrentHits(t *testing.T) {
	t.Cleanup(Reset)
	Arm("c", Fault{Kind: KindError, Probability: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Hit(nil, "c")
				Hit(nil, "other")
			}
		}()
	}
	wg.Wait()
	if Fired("c") == 0 {
		t.Fatal("site never fired")
	}
}
