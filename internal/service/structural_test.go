package service

import (
	"math"
	"reflect"
	"testing"

	"waterimm/internal/api"
	"waterimm/internal/mc"
)

// TestMonteCarloStructuralFastPath: a montecarlo run's perturbed cells
// must engage the structural cache — value-only reassembly through the
// shared sparsity skeleton — and surface it in the metrics.
func TestMonteCarloStructuralFastPath(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	req := mcServiceRequest(8)
	req.Params["die_k"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.1}
	in, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, e, in.ID)
	if got.State != StateDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	m := e.Metrics()
	if m.GeomEntries != 1 {
		t.Errorf("geom_entries = %d, want 1 (every sample shares one topology)", m.GeomEntries)
	}
	if m.AssemblySymbolicHits == 0 {
		t.Errorf("assembly_symbolic_hits = 0; the fast path never engaged (misses %d)",
			m.AssemblySymbolicMisses)
	}
	if m.AssemblySymbolicMisses > 2 {
		t.Errorf("assembly_symbolic_misses = %d, want ~1 seed per topology", m.AssemblySymbolicMisses)
	}
}

// TestStructuralReuseDisabledMatches: -no-structural-reuse is an A/B
// switch, not a physics change — the same montecarlo request must
// produce the same statistics (within solver tolerance; the fast path
// only changes CG iteration paths) with the fast path on and off, and
// the disabled engine must report dark counters.
func TestStructuralReuseDisabledMatches(t *testing.T) {
	run := func(disable bool) (*api.MonteCarloResponse, Snapshot) {
		e := New(Config{DisableStructuralReuse: disable})
		defer e.Close()
		req := mcServiceRequest(8)
		req.Params["h"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.2}
		req.Params["die_k"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.1}
		in, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		got := waitDone(t, e, in.ID)
		if got.State != StateDone {
			t.Fatalf("disable=%v: state %s, error %q", disable, got.State, got.Error)
		}
		return got.Result.(*api.MonteCarloResponse), e.Metrics()
	}
	fast, fm := run(false)
	base, bm := run(true)
	// The fast path changes CG iteration paths (borrowed hierarchies,
	// nominal-basis warm starts), never converged results: summaries
	// must agree within solver tolerance, far below any physical
	// significance.
	const tol = 1e-6
	sumClose := func(name string, a, b mc.Summary) {
		for _, d := range []float64{a.Mean - b.Mean, a.Std - b.Std, a.P5 - b.P5,
			a.P50 - b.P50, a.P95 - b.P95, a.Min - b.Min, a.Max - b.Max} {
			if math.Abs(d) > tol {
				t.Errorf("%s diverges across the structural switch by %.2e:\n%+v\n%+v", name, d, a, b)
				return
			}
		}
	}
	sumClose("freq_ghz", fast.FreqGHz, base.FreqGHz)
	sumClose("eval_peak_c", fast.EvalPeakC, base.EvalPeakC)
	if len(fast.Sobol) != len(base.Sobol) {
		t.Fatalf("sobol length diverges: %d vs %d", len(fast.Sobol), len(base.Sobol))
	}
	for i := range fast.Sobol {
		f, g := fast.Sobol[i], base.Sobol[i]
		for _, d := range []float64{f.FreqGHz.S1 - g.FreqGHz.S1, f.FreqGHz.ST - g.FreqGHz.ST,
			f.EvalPeakC.S1 - g.EvalPeakC.S1, f.EvalPeakC.ST - g.EvalPeakC.ST} {
			if math.Abs(d) > tol {
				t.Errorf("sobol[%d] diverges across the structural switch by %.2e", i, d)
			}
		}
	}
	if fm.AssemblySymbolicHits == 0 {
		t.Errorf("enabled engine shows no symbolic hits")
	}
	if bm.AssemblySymbolicHits != 0 || bm.AssemblySymbolicMisses != 0 || bm.GeomEntries != 0 {
		t.Errorf("disabled engine still counted structural work: %+v", bm)
	}
}

// TestMonteCarloRunToRunDeterministic pins the property the
// deterministic nominal reference buys: with the structural fast path
// engaged (shared skeleton, borrowed hierarchy, basis warm starts), a
// montecarlo run's statistics are bitwise identical run to run — the
// reference is always built from nominal values, never from whichever
// perturbed cell a scheduler happened to run first.
func TestMonteCarloRunToRunDeterministic(t *testing.T) {
	run := func() *api.MonteCarloResponse {
		e := New(Config{})
		defer e.Close()
		req := mcServiceRequest(8)
		req.Params["die_k"] = mc.Dist{Kind: "lognormal", Mean: 1, Sigma: 0.1}
		in, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		got := waitDone(t, e, in.ID)
		if got.State != StateDone {
			t.Fatalf("state %s, error %q", got.State, got.Error)
		}
		m := e.Metrics()
		if m.AssemblySymbolicHits == 0 {
			t.Fatal("fast path did not engage; this test would prove nothing")
		}
		return got.Result.(*api.MonteCarloResponse)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("montecarlo statistics diverge run to run:\n%+v\n%+v", a, b)
	}
}

// TestPerturbedCellsSpareSystemPool is the eviction-pressure
// regression: a montecarlo run's one-shot perturbed systems must not
// cycle through the (deliberately tiny) system pool — the nominal
// geometry a concurrent plan workload relies on stays resident.
func TestPerturbedCellsSpareSystemPool(t *testing.T) {
	e := New(Config{AssemblyCacheEntries: 1})
	defer e.Close()

	// Seed the pool with the nominal geometry.
	nominal := &api.PlanRequest{Chip: "lp", Chips: 1, Coolant: "water", GridNX: 8, GridNY: 8}
	in, err := e.Submit(nominal)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, in.ID)
	before := e.Metrics().Assembly

	// 24 perturbed sample cells against a pool of capacity 1.
	mcIn, err := e.Submit(mcServiceRequest(8))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, e, mcIn.ID)
	if got.State != StateDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	after := e.Metrics().Assembly
	if after.Evictions != before.Evictions {
		t.Errorf("perturbed cells churned the system pool: evictions %d -> %d",
			before.Evictions, after.Evictions)
	}
	if after.Misses != before.Misses {
		t.Errorf("perturbed cells acquired from the system pool: misses %d -> %d",
			before.Misses, after.Misses)
	}

	// The nominal geometry must still be resident: a same-geometry,
	// different-threshold request (a fresh result key) is a pool hit.
	again := &api.PlanRequest{Chip: "lp", Chips: 1, Coolant: "water", GridNX: 8, GridNY: 8, ThresholdC: 75}
	in2, err := e.Submit(again)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, in2.ID)
	final := e.Metrics().Assembly
	if final.Hits != after.Hits+1 {
		t.Errorf("nominal geometry was not resident after the montecarlo run: hits %d -> %d",
			after.Hits, final.Hits)
	}
}
