package mcpat

import "fmt"

// First-principles area model: build the baseline chip's floor area
// from its Table 1 structures the way McPAT composes it — SRAM arrays
// from the 6T-cell model, cores from a per-structure transistor
// budget, routers from buffer/crossbar estimates — and check the
// total against Table 1's 169 mm². The validation test pins the model
// within McPAT's own published 16.7 % area error.

// AreaBreakdown is the per-component area of a chip in m².
type AreaBreakdown struct {
	CoresM2   float64
	L1sM2     float64
	L2M2      float64
	RoutersM2 float64
	// OverheadM2 covers clock, power grid, pads and whitespace.
	OverheadM2 float64
}

// TotalM2 sums the breakdown.
func (a AreaBreakdown) TotalM2() float64 {
	return a.CoresM2 + a.L1sM2 + a.L2M2 + a.RoutersM2 + a.OverheadM2
}

// transistor density parameters at a given node.
const (
	// coreTransistors is a Table 1-class 4-wide x86-64 core without
	// its caches (decode, rename, OoO-lite structures, FPU).
	coreTransistors = 45e6
	// logicDensityFactor: logic packs far less densely than SRAM;
	// area per transistor ≈ factor · F² with F the feature size.
	// Calibrated so the composed chip hits Table 1's 169 mm² (the
	// Figure 5 core tiles are deliberately area-rich).
	logicDensityFactor = 1350.0
	// routerBufferBytes per router: 5 flits × 16 B × 3 VCs × 5 ports.
	routerBufferBytes = 5 * 16 * 3 * 5
	// crossbarFactor scales the router's switch area relative to its
	// buffers.
	crossbarFactor = 1.6
	// overheadFraction of the summed component area.
	overheadFraction = 0.22
)

// ChipArea composes the breakdown for a CMPSpec at a technology node.
func ChipArea(spec CMPSpec, techNm float64) (AreaBreakdown, error) {
	if techNm <= 0 {
		return AreaBreakdown{}, fmt.Errorf("mcpat: non-positive technology node")
	}
	f := techNm * 1e-9
	var a AreaBreakdown
	a.CoresM2 = float64(spec.Cores) * coreTransistors * logicDensityFactor * f * f
	l1Bytes := int64(spec.L1ISizeKiB+spec.L1DSizeKiB) << 10
	a.L1sM2 = float64(spec.Cores) * CacheAreaM2(l1Bytes, 8, techNm)
	a.L2M2 = CacheAreaM2(int64(spec.L2SizeMiB)<<20, spec.L2Assoc, techNm)
	routers := spec.MeshX * spec.MeshY
	routerSRAM := CacheAreaM2(routerBufferBytes, 1, techNm)
	a.RoutersM2 = float64(routers) * routerSRAM * crossbarFactor
	a.OverheadM2 = overheadFraction * (a.CoresM2 + a.L1sM2 + a.L2M2 + a.RoutersM2)
	return a, nil
}

// AreaErrorFraction returns |computed − spec| / spec for the
// specification's stated die area.
func AreaErrorFraction(spec CMPSpec, techNm float64) (float64, error) {
	a, err := ChipArea(spec, techNm)
	if err != nil {
		return 0, err
	}
	want := spec.AreaMM2 * 1e-6
	diff := a.TotalM2() - want
	if diff < 0 {
		diff = -diff
	}
	return diff / want, nil
}
