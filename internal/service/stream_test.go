package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"waterimm/internal/api"
)

// streamReq is a small, fast streaming job: coarse grid, single
// substep, a trace with an idle tail so utilisation coupling is
// exercised too.
func streamReq(intervals int) *api.CosimStreamRequest {
	return &api.CosimStreamRequest{
		Chip: "lp", GHz: 1.5, Coolant: "water",
		IntervalS: 0.01, Intervals: intervals, SubSteps: 1,
		GridNX: 16, GridNY: 16,
		Trace: []api.CosimStreamPhase{
			{DurationS: 0.05, Utilisation: 1},
			{DurationS: 0.05, Utilisation: 0.2},
		},
		CheckpointEvery: 10,
		MaxSamples:      100_000,
	}
}

// collectStreamed reads a job's feed through StreamNext until the
// terminal signal, asserting the sequence numbers stay contiguous.
func collectStreamed(t *testing.T, e *Engine, id string) []api.CosimStreamInterval {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var all []api.CosimStreamInterval
	for {
		batch, done, err := e.StreamNext(ctx, id, len(all))
		if err != nil {
			t.Fatalf("StreamNext after %d intervals: %v", len(all), err)
		}
		for _, in := range batch {
			if in.Seq != len(all)+1 {
				t.Fatalf("interval gap: got seq %d after %d", in.Seq, len(all))
			}
			all = append(all, in)
		}
		if done && len(batch) == 0 {
			return all
		}
	}
}

func TestStreamJobLiveFeed(t *testing.T) {
	e := New(Config{})
	defer e.Close()

	req := streamReq(12)
	in, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != "cosimstream" || in.Progress == nil || in.Progress.TotalCells != 12 {
		t.Fatalf("submitted job info: %+v", in)
	}
	feed := collectStreamed(t, e, in.ID)
	if len(feed) != 12 {
		t.Fatalf("live feed carried %d intervals, want 12", len(feed))
	}
	// The idle phase of the trace must show up as duty-cycled power.
	if feed[0].Utilisation != 1 || feed[6].Utilisation != 0.2 {
		t.Fatalf("trace not coupled: %+v / %+v", feed[0], feed[6])
	}
	if feed[6].DynamicW >= feed[0].DynamicW {
		t.Fatalf("idle interval not cheaper: busy %g W, idle %g W", feed[0].DynamicW, feed[6].DynamicW)
	}

	got := waitDone(t, e, in.ID)
	if got.State != StateDone {
		t.Fatalf("job: state %s, error %q", got.State, got.Error)
	}
	resp, ok := got.Result.(*api.CosimStreamResponse)
	if !ok {
		t.Fatalf("result type %T", got.Result)
	}
	if resp.Intervals != 12 || len(resp.Series) != 12 {
		t.Fatalf("response: %+v", resp)
	}
	// The final series and the live feed are the same records.
	for i := range resp.Series {
		if resp.Series[i] != feed[i] {
			t.Fatalf("series[%d] %+v != feed %+v", i, resp.Series[i], feed[i])
		}
	}
	if got.Progress.DoneCells != 12 {
		t.Fatalf("progress: %+v", got.Progress)
	}
	m := e.Metrics()
	if m.StreamJobs != 1 || m.StreamIntervals != 12 || m.StreamResumes != 0 {
		t.Fatalf("stream metrics: %+v", m)
	}

	// An identical resubmission is a whole-job cache hit with no live
	// feed; its full series lives in the cached result.
	req2 := streamReq(12)
	hit, err := e.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.State != StateDone {
		t.Fatalf("identical stream not served from cache: %+v", hit)
	}
	if _, _, err := e.StreamNext(context.Background(), hit.ID, 0); !errors.Is(err, ErrNotStreaming) {
		t.Fatalf("cache-hit job StreamNext error %v, want ErrNotStreaming", err)
	}
}

func TestStreamNextRejectsNonStreamingKinds(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	in, err := e.Submit(&api.PlanRequest{Chip: "lp", GridNX: 8, GridNY: 8, ThresholdC: 80})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, in.ID)
	if _, _, err := e.StreamNext(context.Background(), in.ID, 0); !errors.Is(err, ErrNotStreaming) {
		t.Fatalf("plan job StreamNext error %v, want ErrNotStreaming", err)
	}
	if _, _, err := e.StreamNext(context.Background(), "j999999-missing", 0); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job StreamNext error %v, want ErrUnknownJob", err)
	}
}

// TestStreamDrainResume is the tentpole's end-to-end contract: a
// streamed job interrupted by a drain resumes on a fresh engine from
// the last checkpoint — contiguous sequence numbers, zero recomputed
// intervals, and a final response byte-identical to an uninterrupted
// run's.
func TestStreamDrainResume(t *testing.T) {
	const intervals = 200
	dir := t.TempDir()

	e1 := New(Config{DiskCache: openStore(t, dir)})
	in, err := e1.Submit(streamReq(intervals))
	if err != nil {
		t.Fatal(err)
	}

	// Let the run get past the first checkpoint (every 10 intervals),
	// then drain mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	seen := 0
	for seen < 17 {
		batch, done, err := e1.StreamNext(ctx, in.ID, seen)
		if err != nil || done {
			t.Fatalf("stream ended early: seen=%d done=%v err=%v", seen, done, err)
		}
		seen += len(batch)
	}
	e1.BeginDrain()
	drain(t, e1)

	parked, err := e1.Status(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if parked.State != StateCanceled || parked.ErrorCode != CodeCanceled {
		t.Fatalf("drained stream job: %+v", parked)
	}
	solved1 := e1.Metrics().StreamIntervals
	if solved1 >= intervals || solved1 < 17 {
		t.Fatalf("phase-1 solved %d intervals, want a strict mid-run count >= 17", solved1)
	}
	e1.Close()

	// "Restart": a fresh engine over the same cache directory. The
	// identical request resumes from the parked checkpoint.
	e2 := New(Config{DiskCache: openStore(t, dir)})
	in2, err := e2.Submit(streamReq(intervals))
	if err != nil {
		t.Fatal(err)
	}
	if in2.CacheHit {
		t.Fatalf("interrupted job must not be a cache hit: %+v", in2)
	}
	feed := collectStreamed(t, e2, in2.ID)
	if len(feed) != intervals {
		t.Fatalf("resumed feed carried %d intervals, want %d", len(feed), intervals)
	}
	got := waitDone(t, e2, in2.ID)
	if got.State != StateDone {
		t.Fatalf("resumed job: state %s, error %q", got.State, got.Error)
	}
	if got.ResumedFromSeq == 0 {
		t.Fatal("resumed job did not report resumed_from_seq")
	}

	// Zero recomputed intervals: the drain parked behind a fresh
	// checkpoint, so phase 2 picks up exactly where phase 1 stopped.
	m2 := e2.Metrics()
	if m2.StreamResumes != 1 {
		t.Fatalf("stream_resumes = %d, want 1", m2.StreamResumes)
	}
	if m2.StreamResumedIntervals != solved1 {
		t.Fatalf("resumed %d intervals, phase 1 solved %d — recompute or loss", m2.StreamResumedIntervals, solved1)
	}
	if m2.StreamIntervals+m2.StreamResumedIntervals != intervals {
		t.Fatalf("interval conservation: solved %d + resumed %d != %d",
			m2.StreamIntervals, m2.StreamResumedIntervals, intervals)
	}

	// The consumed checkpoint is retired; only the spilled result
	// remains on disk after the drain barrier.
	drain(t, e2)
	if m := e2.Metrics(); m.DiskCacheEntries != 1 {
		t.Fatalf("store holds %d entries after resume, want 1 (the result)", m.DiskCacheEntries)
	}
	e2.Close()

	// Byte-identical to an uninterrupted run: the checkpoint carries
	// every bit the interval loop consults.
	e3 := New(Config{})
	defer e3.Close()
	in3, err := e3.Submit(streamReq(intervals))
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, e3, in3.ID)
	if want.State != StateDone {
		t.Fatalf("uninterrupted run: state %s, error %q", want.State, want.Error)
	}
	resumedJSON, err := json.Marshal(got.Result)
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON, err := json.Marshal(want.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedJSON, cleanJSON) {
		t.Errorf("resumed response differs from uninterrupted run:\nresumed %s\nclean   %s", resumedJSON, cleanJSON)
	}
}
