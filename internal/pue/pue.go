// Package pue models datacenter cooling facilities at the macro level
// of Section 4.4: a primary coolant facing the chips, an optional
// secondary loop cooling the primary, and the pumps/chillers/fans
// whose overhead sets the power usage effectiveness (PUE). The
// paper's argument is qualitative — direct immersion in natural water
// removes the secondary loop entirely and approaches PUE 1.00 — and
// this package makes the bookkeeping behind that argument executable.
package pue

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"waterimm/internal/material"
)

// Secondary enumerates secondary-cooling technologies.
type Secondary int

// Secondary loop options.
const (
	// SecondaryNone: the primary coolant is the environment itself
	// (direct natural-water immersion).
	SecondaryNone Secondary = iota
	// SecondaryChiller: compressor-based chilled water/air.
	SecondaryChiller
	// SecondaryDryCooler: outside-air heat exchanger with fans.
	SecondaryDryCooler
	// SecondaryCoolingTower: evaporative tower.
	SecondaryCoolingTower
	// SecondaryNaturalWater: pumped lake/sea water loop (CSCS-style,
	// pumped over distance).
	SecondaryNaturalWater
)

func (s Secondary) String() string {
	switch s {
	case SecondaryNone:
		return "none (direct)"
	case SecondaryChiller:
		return "chiller"
	case SecondaryDryCooler:
		return "dry cooler"
	case SecondaryCoolingTower:
		return "cooling tower"
	case SecondaryNaturalWater:
		return "pumped natural water"
	}
	return fmt.Sprintf("Secondary(%d)", int(s))
}

// overheadFraction returns the secondary loop's power draw as a
// fraction of the heat it rejects. Chillers pay a full compression
// cycle (1/COP); dry coolers and towers pay fans; pumped natural
// water pays pipeline pumps.
func (s Secondary) overheadFraction() float64 {
	switch s {
	case SecondaryNone:
		return 0
	case SecondaryChiller:
		return 0.285 // COP ≈ 3.5
	case SecondaryDryCooler:
		return 0.035
	case SecondaryCoolingTower:
		return 0.02
	case SecondaryNaturalWater:
		return 0.03 // CSCS pumps lake water 2.8 km
	}
	return 0
}

// Facility is one cooling configuration.
type Facility struct {
	Name string
	// Primary is the coolant that faces the chips.
	Primary material.Coolant
	// PrimaryPumpFraction is the primary loop's circulation power as
	// a fraction of IT load (fans for air, pumps for liquid loops,
	// zero for passive natural-convection immersion).
	PrimaryPumpFraction float64
	// Secondary cools the primary.
	Secondary Secondary
	// ITLoadKW is the IT equipment power.
	ITLoadKW float64
	// PowerDistributionFraction covers UPS/distribution losses.
	PowerDistributionFraction float64
	// CapexPerKW is the cooling plant's build cost premium in USD per
	// kW of IT load (tanks, plumbing, enclosures) over a bare room.
	CapexPerKW float64
}

// PUE returns total facility power over IT power.
func (f Facility) PUE() float64 {
	if f.ITLoadKW <= 0 {
		return 0
	}
	cooling := f.PrimaryPumpFraction + f.Secondary.overheadFraction()
	return 1 + cooling + f.PowerDistributionFraction
}

// CoolantCostUSD estimates the cost of filling the immersion tanks:
// litres per kW of IT load times the coolant's unit cost. Air and
// cold plates need no tank volume.
func (f Facility) CoolantCostUSD(litresPerKW float64) float64 {
	if !f.Primary.Immersive {
		return 0
	}
	return f.Primary.UnitCostPerLitre * litresPerKW * f.ITLoadKW
}

// StandardFacilities returns the comparison set of Section 4.4: the
// conventional options, the warm-water-pipe design (ABCI-class), and
// direct immersion under natural water with an ideal PUE.
func StandardFacilities(itLoadKW float64) []Facility {
	return []Facility{
		{
			Name:    "air + chiller",
			Primary: material.Air, PrimaryPumpFraction: 0.10,
			Secondary: SecondaryChiller, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.08,
			CapexPerKW:                250, // chiller plant + CRAC units
		},
		{
			Name:    "warm-water pipes + dry cooler (ABCI-style)",
			Primary: material.WaterPipe, PrimaryPumpFraction: 0.03,
			Secondary: SecondaryDryCooler, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.06,
			CapexPerKW:                200,
		},
		{
			Name:    "oil immersion + cooling tower (GRC-style)",
			Primary: material.MineralOil, PrimaryPumpFraction: 0.015,
			Secondary: SecondaryCoolingTower, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.05,
			CapexPerKW:                300, // tanks + handling
		},
		{
			Name:    "fluorinert immersion + cooling tower",
			Primary: material.Fluorinert, PrimaryPumpFraction: 0.015,
			Secondary: SecondaryCoolingTower, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.05,
			CapexPerKW:                300,
		},
		{
			Name:    "water immersion, tank + pumped natural water",
			Primary: material.Water, PrimaryPumpFraction: 0.01,
			Secondary: SecondaryNaturalWater, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.05,
			CapexPerKW:                280, // coated boards + tanks
		},
		{
			Name:    "water immersion, direct under natural water",
			Primary: material.Water, PrimaryPumpFraction: 0,
			Secondary: SecondaryNone, ITLoadKW: itLoadKW,
			PowerDistributionFraction: 0.05,
			CapexPerKW:                450, // marine enclosures, anchoring
		},
	}
}

// TCOUSD returns the cooling-related total cost of ownership over a
// horizon: plant capex, the coolant fill, and the electricity burnt
// by everything above the IT load itself.
func (f Facility) TCOUSD(years, usdPerKWh, litresPerKW float64) float64 {
	capex := f.CapexPerKW*f.ITLoadKW + f.CoolantCostUSD(litresPerKW)
	overheadKW := (f.PUE() - 1) * f.ITLoadKW
	opex := overheadKW * usdPerKWh * 8760 * years
	return capex + opex
}

// BreakEvenYears returns when facility f's lower running cost has
// paid back its capex premium over facility g (math.Inf(1) when f
// never catches up).
func (f Facility) BreakEvenYears(g Facility, usdPerKWh, litresPerKW float64) float64 {
	capexF := f.CapexPerKW*f.ITLoadKW + f.CoolantCostUSD(litresPerKW)
	capexG := g.CapexPerKW*g.ITLoadKW + g.CoolantCostUSD(litresPerKW)
	opexF := (f.PUE() - 1) * f.ITLoadKW * usdPerKWh * 8760
	opexG := (g.PUE() - 1) * g.ITLoadKW * usdPerKWh * 8760
	if opexF >= opexG {
		return math.Inf(1)
	}
	return (capexF - capexG) / (opexG - opexF)
}

// CompareTable renders PUE and coolant cost for a facility set.
func CompareTable(facilities []Facility, litresPerKW float64) string {
	sorted := make([]Facility, len(facilities))
	copy(sorted, facilities)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PUE() > sorted[j].PUE() })
	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %-22s %6s %12s\n", "facility", "secondary", "PUE", "coolant $")
	for _, f := range sorted {
		fmt.Fprintf(&b, "%-46s %-22s %6.3f %12.0f\n",
			f.Name, f.Secondary, f.PUE(), f.CoolantCostUSD(litresPerKW))
	}
	return b.String()
}
